// Package experiments implements the reproduction drivers for every
// table/figure of the paper's demonstration (E1–E3) and the
// scalability/accuracy experiment families its modules inherit from
// the companion paper [7] (E4–E7). DESIGN.md carries the experiment
// index; EXPERIMENTS.md records paper-reported vs measured values.
// Both cmd/cerfixbench and the root testing.B benchmarks call into
// this package so the numbers come from one implementation.
package experiments

import (
	"bufio"
	"bytes"
	"context"
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"
	"path/filepath"
	"runtime"
	"time"

	"cerfix"
	"cerfix/internal/audit"
	"cerfix/internal/cfd"
	"cerfix/internal/core"
	"cerfix/internal/dataset"
	"cerfix/internal/jobs"
	"cerfix/internal/master"
	"cerfix/internal/metrics"
	"cerfix/internal/monitor"
	"cerfix/internal/oracle"
	"cerfix/internal/pipeline"
	"cerfix/internal/region"
	"cerfix/internal/rule"
	"cerfix/internal/schema"
	"cerfix/internal/simd"
	"cerfix/internal/storage"
	"cerfix/internal/value"
)

// DemoEngine wires the paper's Fig. 2 configuration (3 master tuples,
// rules φ1–φ9).
func DemoEngine() (*core.Engine, error) {
	st := master.New(dataset.PersonSchema())
	for _, row := range dataset.DemoMasterRows() {
		if _, err := st.InsertValues(row...); err != nil {
			return nil, err
		}
	}
	return core.NewEngine(dataset.CustSchema(), dataset.DemoRules(), st)
}

// --- E1: Fig. 2 — rule management & consistency -------------------------

// E1Result reports the consistency analysis of the demo rule set.
type E1Result struct {
	// Consistent is the analysis verdict (paper: the nine rules pass).
	Consistent bool
	// Errors and Warnings count issues by severity.
	Errors, Warnings int
	// ProbesRun counts Church–Rosser probe chases.
	ProbesRun int
	// Rules is the rule count analyzed.
	Rules int
	// Elapsed is the analysis wall time.
	Elapsed time.Duration
}

// RunE1 executes experiment E1.
func RunE1() (*E1Result, error) {
	eng, err := DemoEngine()
	if err != nil {
		return nil, err
	}
	start := time.Now()
	rep := eng.CheckConsistency(nil)
	return &E1Result{
		Consistent: rep.Consistent(),
		Errors:     len(rep.Errors()),
		Warnings:   len(rep.Warnings()),
		ProbesRun:  rep.ProbesRun,
		Rules:      eng.Rules().Len(),
		Elapsed:    time.Since(start),
	}, nil
}

// --- E2: Fig. 3 — monitor interaction rounds ------------------------------

// E2Round records one interaction round of the walkthrough.
type E2Round struct {
	// Validated lists the attributes the user asserted this round.
	Validated []string
	// Fixed lists attributes CerFix validated in response (with
	// rewrites marked "attr:old->new").
	Fixed []string
	// NextSuggestion is what CerFix asks for next (empty when done).
	NextSuggestion []string
}

// E2Result reports the Fig. 3 walkthrough.
type E2Result struct {
	Rounds  []E2Round
	Certain bool
	// MatchesGroundTruth reports the final tuple equals the entity.
	MatchesGroundTruth bool
}

// RunE2 reenacts the Fig. 3 walkthrough: the user first validates
// their own choice {AC, phn, type, item}, then follows suggestions.
func RunE2() (*E2Result, error) {
	eng, err := DemoEngine()
	if err != nil {
		return nil, err
	}
	mon := monitor.New(eng, nil)
	sess, err := mon.NewSession(dataset.DemoInputFig3())
	if err != nil {
		return nil, err
	}
	truth := dataset.DemoGroundTruthFig3()
	out := &E2Result{}
	asserts := []string{"AC", "phn", "type", "item"} // the Fig. 3(a) user choice
	for round := 0; !sess.Done() && round < 10; round++ {
		if round > 0 {
			asserts = sess.Suggestion()
		}
		m := make(map[string]string, len(asserts))
		for _, a := range asserts {
			m[a] = string(truth.Get(a))
		}
		res, err := sess.Validate(m)
		if err != nil {
			return nil, err
		}
		r := E2Round{Validated: asserts}
		for _, c := range res.Changes {
			if c.IsRewrite() {
				r.Fixed = append(r.Fixed, fmt.Sprintf("%s:%s->%s", c.Attr, c.Old, c.New))
			} else {
				r.Fixed = append(r.Fixed, c.Attr)
			}
		}
		r.NextSuggestion = sess.Suggestion()
		out.Rounds = append(out.Rounds, r)
	}
	out.Certain = sess.Certain()
	out.MatchesGroundTruth = sess.Tuple.Equal(truth)
	return out, nil
}

// --- E3: Fig. 4 — auditing statistics --------------------------------------

// E3Result reports the auditing statistics over a fixed stream.
type E3Result struct {
	// Tuples is the stream length.
	Tuples int
	// MobileShare is the workload's mobile/home mix.
	MobileShare float64
	// PerAttr is the Fig. 4 per-attribute user%/auto% table.
	PerAttr []audit.AttrStats
	// Overall aggregates all attributes (the paper's "20% user / 80%
	// auto" claim; see EXPERIMENTS.md for the measured split and the
	// discussion of the gap).
	Overall audit.AttrStats
	// RewriteShare is the fraction of auto-validated cells whose value
	// was actually rewritten (vs confirmed).
	RewriteShare float64
	// AllCertain reports whether every session reached a certain fix.
	AllCertain bool
}

// RunE3 cleans a stream of nInputs dirty customer tuples (noise rate
// noiseRate, mobile/home mix mobileShare) with the oracle following
// suggestions, and returns the audit statistics.
func RunE3(nEntities, nInputs int, noiseRate, mobileShare float64, seed uint64) (*E3Result, error) {
	g := dataset.NewCustomerGen(seed)
	g.MobileShare = mobileShare
	w, err := g.GenerateWorkload(nEntities, nInputs, noiseRate, nil)
	if err != nil {
		return nil, err
	}
	eng, err := core.NewEngine(dataset.CustSchema(), dataset.DemoRules(), w.Store)
	if err != nil {
		return nil, err
	}
	mon := monitor.New(eng, nil)
	allCertain := true
	for i := range w.Dirty {
		sess, err := mon.NewSession(w.Dirty[i])
		if err != nil {
			return nil, err
		}
		u := oracle.NewUser(w.Truth[i], oracle.FollowSuggestions)
		if _, err := u.RunSession(sess); err != nil {
			return nil, err
		}
		if !sess.Certain() {
			allCertain = false
		}
	}
	overall := mon.Log().Overall()
	res := &E3Result{
		Tuples:      nInputs,
		MobileShare: mobileShare,
		PerAttr:     mon.Log().StatsPerAttr(),
		Overall:     overall,
		AllCertain:  allCertain,
	}
	if auto := overall.AutoFixed + overall.AutoConfirmed; auto > 0 {
		res.RewriteShare = float64(overall.AutoFixed) / float64(auto)
	}
	return res, nil
}

// RunE3Hosp is E3 on the HOSP workload, whose richer rule coverage
// (the minimal region covers 3 of 11 attributes) approaches the
// paper's headline 20/80 user/auto split.
func RunE3Hosp(nProviders, nInputs int, noiseRate float64, seed uint64) (*E3Result, error) {
	g := dataset.NewHospGen(seed)
	w, err := g.GenerateWorkload(nProviders, nInputs, noiseRate)
	if err != nil {
		return nil, err
	}
	eng, err := core.NewEngine(dataset.HospSchema(), dataset.HospRules(), w.Store)
	if err != nil {
		return nil, err
	}
	mon := monitor.New(eng, nil)
	allCertain := true
	for i := range w.Dirty {
		sess, err := mon.NewSession(w.Dirty[i])
		if err != nil {
			return nil, err
		}
		u := oracle.NewUser(w.Truth[i], oracle.FollowSuggestions)
		if _, err := u.RunSession(sess); err != nil {
			return nil, err
		}
		if !sess.Certain() {
			allCertain = false
		}
	}
	overall := mon.Log().Overall()
	res := &E3Result{
		Tuples:     nInputs,
		PerAttr:    mon.Log().StatsPerAttr(),
		Overall:    overall,
		AllCertain: allCertain,
	}
	if auto := overall.AutoFixed + overall.AutoConfirmed; auto > 0 {
		res.RewriteShare = float64(overall.AutoFixed) / float64(auto)
	}
	return res, nil
}

// RunE3Dblp is E3 on the DBLP citation workload. The minimal region is
// {key} alone — the DBLP key determines title/authors/venue/year and
// venue then determines vfull — so the structural floor is 1/6 ≈ 17%
// user-validated cells, and the measured split (~19/81) reproduces the
// paper's headline "20% user / 80% CerFix" claim.
func RunE3Dblp(nPubs, nInputs int, noiseRate float64, seed uint64) (*E3Result, error) {
	g := dataset.NewDblpGen(seed)
	w, err := g.GenerateWorkload(nPubs, nInputs, noiseRate)
	if err != nil {
		return nil, err
	}
	eng, err := core.NewEngine(dataset.DblpSchema(), dataset.DblpRules(), w.Store)
	if err != nil {
		return nil, err
	}
	mon := monitor.New(eng, nil)
	allCertain := true
	for i := range w.Dirty {
		sess, err := mon.NewSession(w.Dirty[i])
		if err != nil {
			return nil, err
		}
		u := oracle.NewUser(w.Truth[i], oracle.FollowSuggestions)
		if _, err := u.RunSession(sess); err != nil {
			return nil, err
		}
		if !sess.Certain() {
			allCertain = false
		}
	}
	overall := mon.Log().Overall()
	res := &E3Result{
		Tuples:     nInputs,
		PerAttr:    mon.Log().StatsPerAttr(),
		Overall:    overall,
		AllCertain: allCertain,
	}
	if auto := overall.AutoFixed + overall.AutoConfirmed; auto > 0 {
		res.RewriteShare = float64(overall.AutoFixed) / float64(auto)
	}
	return res, nil
}

// --- E4: accuracy vs noise — certain fixes vs CFD heuristic repair ---------

// E4Row is one noise-rate measurement.
type E4Row struct {
	NoiseRate float64
	// CerFix and Baseline are the cell-level repair qualities.
	CerFix, Baseline metrics.RepairQuality
	// BaselineBroken counts correct cells the heuristic overwrote
	// (duplicated from Baseline.BrokenCells for easy printing).
	BaselineBroken int
}

// E4CFDsDSL is the constant-CFD knowledge base the baseline uses: the
// AC→city pairs of the generator's city table (Example 1's ψ rules,
// extended to every city).
const E4CFDsDSL = `
c020: AC = "020" -> city = "Ldn"
c131: AC = "131" -> city = "Edi"
c161: AC = "161" -> city = "Mnc"
c141: AC = "141" -> city = "Gla"
c121: AC = "121" -> city = "Brm"
c113: AC = "113" -> city = "Lds"
c114: AC = "114" -> city = "Shf"
c151: AC = "151" -> city = "Lvp"
c191: AC = "191" -> city = "Ncl"
c117: AC = "117" -> city = "Brs"
c029: AC = "029" -> city = "Cdf"
c115: AC = "115" -> city = "Ntt"
`

// RunE4 sweeps noise rates, cleaning each workload twice: with CerFix
// (oracle follows suggestions; only rule-made rewrites count as the
// system's changes) and with the CFD heuristic baseline.
func RunE4(noiseRates []float64, nEntities, nInputs int, seed uint64) ([]E4Row, error) {
	cfds, err := cfd.ParseSet(E4CFDsDSL)
	if err != nil {
		return nil, err
	}
	var rows []E4Row
	for _, rate := range noiseRates {
		g := dataset.NewCustomerGen(seed)
		w, err := g.GenerateWorkload(nEntities, nInputs, rate, nil)
		if err != nil {
			return nil, err
		}
		eng, err := core.NewEngine(dataset.CustSchema(), dataset.DemoRules(), w.Store)
		if err != nil {
			return nil, err
		}
		mon := monitor.New(eng, nil)
		row := E4Row{NoiseRate: rate}
		rep := cfd.NewRepairer(cfds)
		for i := range w.Dirty {
			// CerFix path. The user-validated cells are excluded from
			// the scored repair (they are human input, not system
			// output): we score dirty-with-user-assertions vs final.
			sess, err := mon.NewSession(w.Dirty[i])
			if err != nil {
				return nil, err
			}
			u := oracle.NewUser(w.Truth[i], oracle.FollowSuggestions)
			if _, err := u.RunSession(sess); err != nil {
				return nil, err
			}
			base := w.Dirty[i].Clone()
			for _, rec := range mon.Log().TupleHistory(sess.ID) {
				if rec.Source == core.SourceUser {
					base.Set(rec.Attr, rec.New)
				}
			}
			if err := row.CerFix.Add(base, sess.Tuple, w.Truth[i]); err != nil {
				return nil, err
			}
			// Baseline path: heuristic CFD repair on the raw dirty
			// tuple.
			fixed, _ := rep.RepairTuple(w.Dirty[i])
			if err := row.Baseline.Add(w.Dirty[i], fixed, w.Truth[i]); err != nil {
				return nil, err
			}
		}
		row.BaselineBroken = row.Baseline.BrokenCells
		rows = append(rows, row)
	}
	return rows, nil
}

// E4HospFDsDSL is the variable-CFD (FD) knowledge base for the HOSP
// table-level baseline: the true functional structure of the data.
const E4HospFDsDSL = `
f1: prov -> hospital, addr, county
f2: zip -> city, state
f3: phone -> zip
f4: mcode -> mname, condition
`

// RunE4Hosp compares table-level cleaning on HOSP: the heuristic
// repairer aligns each FD group on its plurality value (no master, no
// users), while CerFix runs oracle-driven sessions per tuple. The
// baseline can only be right when the plurality happens to be the
// truth — with noisy groups and singleton keys it both misses errors
// and overwrites correct cells.
func RunE4Hosp(noiseRates []float64, nProviders, nInputs int, seed uint64) ([]E4Row, error) {
	fds, err := cfd.ParseSet(E4HospFDsDSL)
	if err != nil {
		return nil, err
	}
	var rows []E4Row
	for _, rate := range noiseRates {
		g := dataset.NewHospGen(seed)
		w, err := g.GenerateWorkload(nProviders, nInputs, rate)
		if err != nil {
			return nil, err
		}
		eng, err := core.NewEngine(dataset.HospSchema(), dataset.HospRules(), w.Store)
		if err != nil {
			return nil, err
		}
		mon := monitor.New(eng, nil)
		row := E4Row{NoiseRate: rate}
		// Baseline: repair the whole dirty table at once.
		tbl := storage.NewTable(dataset.HospSchema())
		var ids []int64
		for _, d := range w.Dirty {
			id, err := tbl.Insert(d)
			if err != nil {
				return nil, err
			}
			ids = append(ids, id)
		}
		cfd.NewRepairer(fds).RepairTable(tbl)
		for i, id := range ids {
			fixed, _ := tbl.Get(id)
			if err := row.Baseline.Add(w.Dirty[i], fixed, w.Truth[i]); err != nil {
				return nil, err
			}
		}
		// CerFix: per-tuple sessions.
		for i := range w.Dirty {
			sess, err := mon.NewSession(w.Dirty[i])
			if err != nil {
				return nil, err
			}
			u := oracle.NewUser(w.Truth[i], oracle.FollowSuggestions)
			if _, err := u.RunSession(sess); err != nil {
				return nil, err
			}
			base := w.Dirty[i].Clone()
			for _, rec := range mon.Log().TupleHistory(sess.ID) {
				if rec.Source == core.SourceUser {
					base.Set(rec.Attr, rec.New)
				}
			}
			if err := row.CerFix.Add(base, sess.Tuple, w.Truth[i]); err != nil {
				return nil, err
			}
		}
		row.BaselineBroken = row.Baseline.BrokenCells
		rows = append(rows, row)
	}
	return rows, nil
}

// --- E5: scalability ---------------------------------------------------------

// E5MasterRow is one master-size measurement across the three lookup
// access paths (the master manager's ablation): the precomputed
// unique-RHS rule index (O(1) per probe), the plain hash index
// (O(|key group|) — non-key attributes like the demo's area code grow
// linearly with master size), and full scans (O(|master|)).
type E5MasterRow struct {
	MasterSize int
	// RuleIdxNsPerFix, PlainIdxNsPerFix and ScanNsPerFix are mean wall
	// times per non-interactive certain-fix pass.
	RuleIdxNsPerFix, PlainIdxNsPerFix, ScanNsPerFix float64
	// ScanMeasured reports whether the scan ablation ran at this size
	// (it is skipped at large sizes to keep runs bounded).
	ScanMeasured bool
}

// RunE5Master measures fix latency vs master size across access paths.
func RunE5Master(sizes []int, nInputs int, scanLimit int, seed uint64) ([]E5MasterRow, error) {
	var rows []E5MasterRow
	for _, size := range sizes {
		g := dataset.NewCustomerGen(seed)
		w, err := g.GenerateWorkload(size, nInputs, 0.3, nil)
		if err != nil {
			return nil, err
		}
		eng, err := core.NewEngine(dataset.CustSchema(), dataset.DemoRules(), w.Store)
		if err != nil {
			return nil, err
		}
		seedSet := schema.SetOfNames(dataset.CustSchema(), "zip", "phn", "type", "item")
		row := E5MasterRow{MasterSize: size}
		w.Store.SetMode(master.ModeRuleIndex)
		row.RuleIdxNsPerFix = timeFixes(eng, w.Dirty, seedSet)
		w.Store.SetMode(master.ModePlainIndex)
		row.PlainIdxNsPerFix = timeFixes(eng, w.Dirty, seedSet)
		if size <= scanLimit {
			w.Store.SetMode(master.ModeScan)
			row.ScanNsPerFix = timeFixes(eng, w.Dirty, seedSet)
			row.ScanMeasured = true
		}
		w.Store.SetMode(master.ModeRuleIndex)
		rows = append(rows, row)
	}
	return rows, nil
}

func timeFixes(eng *core.Engine, inputs []*schema.Tuple, seed schema.AttrSet) float64 {
	start := time.Now()
	for _, t := range inputs {
		eng.Chase(t, seed)
	}
	return float64(time.Since(start).Nanoseconds()) / float64(len(inputs))
}

// E5RulesRow is one rule-count measurement.
type E5RulesRow struct {
	Rules       int
	NsPerFix    float64
	MasterSize  int
	InputTuples int
}

// RunE5Rules measures fix latency vs rule-set size: the demo rules are
// replicated with fresh IDs (semantically idempotent copies), so the
// chase scans proportionally more rules per round.
func RunE5Rules(multipliers []int, masterSize, nInputs int, seed uint64) ([]E5RulesRow, error) {
	var rows []E5RulesRow
	for _, mult := range multipliers {
		g := dataset.NewCustomerGen(seed)
		w, err := g.GenerateWorkload(masterSize, nInputs, 0.3, nil)
		if err != nil {
			return nil, err
		}
		rs, err := replicateRules(dataset.DemoRules(), mult)
		if err != nil {
			return nil, err
		}
		eng, err := core.NewEngine(dataset.CustSchema(), rs, w.Store)
		if err != nil {
			return nil, err
		}
		seedSet := schema.SetOfNames(dataset.CustSchema(), "zip", "phn", "type", "item")
		rows = append(rows, E5RulesRow{
			Rules:       rs.Len(),
			NsPerFix:    timeFixes(eng, w.Dirty, seedSet),
			MasterSize:  masterSize,
			InputTuples: nInputs,
		})
	}
	return rows, nil
}

func replicateRules(base *rule.Set, mult int) (*rule.Set, error) {
	out, err := rule.NewSet()
	if err != nil {
		return nil, err
	}
	for copyIdx := 0; copyIdx < mult; copyIdx++ {
		for _, r := range base.Rules() {
			cp := r.Clone()
			if copyIdx > 0 {
				cp.ID = fmt.Sprintf("%s_c%d", r.ID, copyIdx)
			}
			if err := out.Add(cp); err != nil {
				return nil, err
			}
		}
	}
	return out, nil
}

// --- E6: user effort -----------------------------------------------------------

// E6Row is one noise-rate effort measurement.
type E6Row struct {
	NoiseRate float64
	// AvgValidated is mean user-validated attributes per tuple.
	AvgValidated float64
	// AvgRounds is mean interaction rounds per tuple.
	AvgRounds float64
	// UserFraction is user-validated cells over all cells.
	UserFraction float64
	// AutoRewriteShare is the fraction of auto-validated cells that
	// were rewrites (grows with noise; confirmations shrink).
	AutoRewriteShare float64
}

// RunE6 sweeps noise rates and measures user effort with the
// suggestion-following oracle.
func RunE6(noiseRates []float64, nEntities, nInputs int, seed uint64) ([]E6Row, error) {
	var rows []E6Row
	for _, rate := range noiseRates {
		g := dataset.NewCustomerGen(seed)
		w, err := g.GenerateWorkload(nEntities, nInputs, rate, nil)
		if err != nil {
			return nil, err
		}
		eng, err := core.NewEngine(dataset.CustSchema(), dataset.DemoRules(), w.Store)
		if err != nil {
			return nil, err
		}
		mon := monitor.New(eng, nil)
		var eff metrics.Effort
		for i := range w.Dirty {
			sess, err := mon.NewSession(w.Dirty[i])
			if err != nil {
				return nil, err
			}
			u := oracle.NewUser(w.Truth[i], oracle.FollowSuggestions)
			rounds, err := u.RunSession(sess)
			if err != nil {
				return nil, err
			}
			sum := sess.Summary()
			eff.Observe(sum.UserValidated, rounds, dataset.CustSchema().Len())
		}
		overall := mon.Log().Overall()
		row := E6Row{
			NoiseRate:    rate,
			AvgValidated: eff.AvgValidated(),
			AvgRounds:    eff.AvgRounds(),
			UserFraction: eff.ValidatedFraction(),
		}
		if auto := overall.AutoFixed + overall.AutoConfirmed; auto > 0 {
			row.AutoRewriteShare = float64(overall.AutoFixed) / float64(auto)
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// --- E8: batch-repair pipeline scaling ---------------------------------------

// E8Row is one (access path, worker count) throughput measurement of
// the sharded batch-repair pipeline.
type E8Row struct {
	// Mode is the master lookup access path the run used.
	Mode master.LookupMode
	// Workers is the pipeline worker count.
	Workers int
	// NsPerFix is mean wall time per certain-fix pass.
	NsPerFix float64
	// TuplesPerSec is the batch throughput.
	TuplesPerSec float64
	// Speedup is throughput relative to the same mode's 1-worker run.
	Speedup float64
}

// RunE8 measures batch-repair throughput vs worker count per lookup
// mode: the same generated workload is repaired through the pipeline
// at each worker count, and output equality with the sequential path
// is asserted on the fly (a throughput number for a wrong answer
// would be worthless).
func RunE8(workerCounts []int, nEntities, nInputs int, seed uint64) ([]E8Row, error) {
	g := dataset.NewCustomerGen(seed)
	w, err := g.GenerateWorkload(nEntities, nInputs, 0.3, nil)
	if err != nil {
		return nil, err
	}
	eng, err := core.NewEngine(dataset.CustSchema(), dataset.DemoRules(), w.Store)
	if err != nil {
		return nil, err
	}
	seedSet := schema.SetOfNames(dataset.CustSchema(), "zip", "phn", "type", "item")
	var rows []E8Row
	for _, mode := range []master.LookupMode{master.ModeRuleIndex, master.ModePlainIndex} {
		w.Store.SetMode(mode)
		// Sequential reference for the equality check.
		want := make([]*schema.Tuple, len(w.Dirty))
		for i, tu := range w.Dirty {
			want[i] = eng.Chase(tu, seedSet).Tuple
		}
		var base float64
		for _, n := range workerCounts {
			mismatch := 0
			check := pipeline.SinkFunc(func(r *pipeline.Result) error {
				if !r.Fixed.Equal(want[r.Seq]) {
					mismatch++
				}
				return nil
			})
			start := time.Now()
			stats, err := pipeline.Run(context.Background(), eng, seedSet, pipeline.NewSliceSource(w.Dirty), check, &pipeline.Options{Workers: n})
			if err != nil {
				return nil, err
			}
			elapsed := time.Since(start)
			if mismatch > 0 {
				return nil, fmt.Errorf("e8: %d tuples differ from sequential path at %d workers (%s)", mismatch, n, mode)
			}
			if stats.Tuples != len(w.Dirty) {
				return nil, fmt.Errorf("e8: processed %d of %d tuples", stats.Tuples, len(w.Dirty))
			}
			row := E8Row{
				Mode:         mode,
				Workers:      n,
				NsPerFix:     float64(elapsed.Nanoseconds()) / float64(len(w.Dirty)),
				TuplesPerSec: float64(len(w.Dirty)) / elapsed.Seconds(),
			}
			if base == 0 {
				base = row.TuplesPerSec
			}
			row.Speedup = row.TuplesPerSec / base
			rows = append(rows, row)
		}
	}
	w.Store.SetMode(master.ModeRuleIndex)
	return rows, nil
}

// --- E7: region finder cost & quality ---------------------------------------

// E7Row is one configuration measurement.
type E7Row struct {
	// Attrs is the input schema width (2m for the pairs(m) config).
	Attrs int
	// ExactNs and GreedyNs are TopK wall times.
	ExactNs, GreedyNs int64
	// ExactBestSize and GreedyBestSize are the best region sizes.
	ExactBestSize, GreedyBestSize int
	// ExactRegions counts regions found by the exact search.
	ExactRegions int
}

// RunE7 measures the region finder on the pairs(m) family: 2m
// attributes s_i/t_i with rules s_i→t_i and t_i→s_i. Every minimal
// region picks one attribute per pair (size m), so the exact
// subset-lattice search must enumerate up to C(2m, m) candidates while
// greedy stays polynomial.
func RunE7(pairCounts []int, seed uint64) ([]E7Row, error) {
	var rows []E7Row
	for _, m := range pairCounts {
		eng, err := PairsEngine(m, seed)
		if err != nil {
			return nil, err
		}
		finder := region.NewFinder(eng)
		start := time.Now()
		exact := finder.TopK(&region.Options{MaxRegionsPerCell: 2})
		exactNs := time.Since(start).Nanoseconds()
		start = time.Now()
		greedy := finder.TopK(&region.Options{Greedy: true})
		greedyNs := time.Since(start).Nanoseconds()
		row := E7Row{Attrs: 2 * m, ExactNs: exactNs, GreedyNs: greedyNs, ExactRegions: len(exact)}
		if len(exact) > 0 {
			row.ExactBestSize = exact[0].Size()
		}
		if len(greedy) > 0 {
			row.GreedyBestSize = greedy[0].Size()
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// PairsEngine builds the pairs(m) configuration with a small master
// relation providing coverage (exported for the root benchmarks).
func PairsEngine(m int, seed uint64) (*core.Engine, error) {
	attrs := make([]schema.Attribute, 0, 2*m)
	for i := 0; i < m; i++ {
		attrs = append(attrs, schema.Str(fmt.Sprintf("s%d", i)), schema.Str(fmt.Sprintf("t%d", i)))
	}
	input, err := schema.New("PAIRS", attrs...)
	if err != nil {
		return nil, err
	}
	rs, err := rule.NewSet()
	if err != nil {
		return nil, err
	}
	for i := 0; i < m; i++ {
		fwd, err := rule.Parse(fmt.Sprintf("f%d: match s%d~s%d set t%d := t%d", i, i, i, i, i))
		if err != nil {
			return nil, err
		}
		bwd, err := rule.Parse(fmt.Sprintf("b%d: match t%d~t%d set s%d := s%d", i, i, i, i, i))
		if err != nil {
			return nil, err
		}
		if err := rs.Add(fwd); err != nil {
			return nil, err
		}
		if err := rs.Add(bwd); err != nil {
			return nil, err
		}
	}
	st := master.New(input)
	// A handful of master rows; values unique per row and column.
	for r := 0; r < 4; r++ {
		vals := make([]value.V, 2*m)
		for i := range vals {
			vals[i] = value.V(fmt.Sprintf("v%d-%d", r, i))
		}
		if _, err := st.InsertValues(vals...); err != nil {
			return nil, err
		}
	}
	return core.NewEngine(input, rs, st)
}

// --- E9: snapshot cost — deep clone vs copy-on-write -------------------

// E9Row is one master-size measurement comparing the legacy deep-clone
// snapshot path (core.Engine.SnapshotDeep) with the O(1) copy-on-write
// path (core.Engine.Snapshot). The acceptance claim of the COW rework
// is visible directly in the numbers: CowSnapshotNs stays flat as the
// master grows while DeepCloneNs scales with it, and the steady-state
// fix latencies agree — the cheap snapshot costs readers nothing.
type E9Row struct {
	// MasterSize is the number of master tuples.
	MasterSize int `json:"master_size"`
	// DeepCloneNs is the latency of one deep-clone snapshot (best of
	// several captures).
	DeepCloneNs int64 `json:"deep_clone_snapshot_ns"`
	// CowSnapshotNs is the latency of one copy-on-write snapshot
	// (best of several captures, each taken after a live write so the
	// capture is never a trivial re-capture).
	CowSnapshotNs int64 `json:"cow_snapshot_ns"`
	// DeepFixNs and CowFixNs are steady-state certain-fix latencies
	// (ns per fix) chasing the same inputs against each snapshot kind.
	DeepFixNs float64 `json:"deep_fix_ns_per_fix"`
	CowFixNs  float64 `json:"cow_fix_ns_per_fix"`
	// CowWriterNs is the mean live-store insert latency while a
	// snapshot is outstanding — the copy-on-write cost writers absorb
	// for the shards they touch.
	CowWriterNs float64 `json:"cow_writer_ns_per_insert"`
}

// RunE9 measures snapshot latency and steady-state fix throughput vs
// master size for both snapshot paths, asserting on the fly that the
// two produce identical fixes (a latency number for a wrong answer
// would be worthless).
func RunE9(sizes []int, probes int, seed uint64) ([]E9Row, error) {
	const (
		snapReps     = 7
		writerProbes = 1000
	)
	seedSet := schema.SetOfNames(dataset.CustSchema(), "zip", "phn", "type", "item")
	var rows []E9Row
	for _, n := range sizes {
		g := dataset.NewCustomerGen(seed)
		// Extra entities feed the write probes without colliding with
		// the n loaded rows (zips embed the entity serial).
		entities := g.GenerateEntities(n + snapReps + writerProbes)
		st, err := dataset.MasterStore(entities[:n])
		if err != nil {
			return nil, err
		}
		eng, err := core.NewEngine(dataset.CustSchema(), dataset.DemoRules(), st)
		if err != nil {
			return nil, err
		}
		inputs := make([]*schema.Tuple, probes)
		for i := range inputs {
			inputs[i] = g.CleanInput(entities[i%n])
		}
		extra := entities[n:]

		// Snapshot latencies. Each COW capture follows a live insert,
		// so it can never piggyback on an identical prior capture.
		row := E9Row{MasterSize: n}
		for i := 0; i < snapReps; i++ {
			start := time.Now()
			deep := eng.SnapshotDeep()
			el := time.Since(start).Nanoseconds()
			if row.DeepCloneNs == 0 || el < row.DeepCloneNs {
				row.DeepCloneNs = el
			}
			if deep.Master().Len() != st.Len() {
				return nil, fmt.Errorf("e9: deep clone lost rows")
			}
		}
		var cow *core.Engine
		for i := 0; i < snapReps; i++ {
			if _, err := st.InsertValues(extra[i].Master...); err != nil {
				return nil, err
			}
			start := time.Now()
			cow = eng.Snapshot()
			el := time.Since(start).Nanoseconds()
			if row.CowSnapshotNs == 0 || el < row.CowSnapshotNs {
				row.CowSnapshotNs = el
			}
		}
		deep := eng.SnapshotDeep() // same generation as cow

		// Parity: both snapshot kinds fix identically.
		for _, tu := range inputs[:min(len(inputs), 50)] {
			a := cow.Chase(tu, seedSet).Tuple
			b := deep.Chase(tu, seedSet).Tuple
			if !a.Equal(b) {
				return nil, fmt.Errorf("e9: COW and deep-clone snapshots disagree at size %d", n)
			}
		}

		// Steady-state fix latency against each snapshot kind. The GC
		// barrier keeps garbage from the discarded deep clones above
		// from being collected inside a timed section.
		runtime.GC()
		start := time.Now()
		ch := cow.NewChaser()
		for _, tu := range inputs {
			ch.Chase(tu, seedSet)
		}
		row.CowFixNs = float64(time.Since(start).Nanoseconds()) / float64(len(inputs))
		runtime.GC()
		start = time.Now()
		ch = deep.NewChaser()
		for _, tu := range inputs {
			ch.Chase(tu, seedSet)
		}
		row.DeepFixNs = float64(time.Since(start).Nanoseconds()) / float64(len(inputs))

		// Writer-side COW cost: live inserts while cow is outstanding.
		runtime.GC()
		start = time.Now()
		for i := snapReps; i < snapReps+writerProbes; i++ {
			if _, err := st.InsertValues(extra[i].Master...); err != nil {
				return nil, err
			}
		}
		row.CowWriterNs = float64(time.Since(start).Nanoseconds()) / float64(writerProbes)
		rows = append(rows, row)
	}
	return rows, nil
}

// --- E10: compiled chase program vs legacy loop ------------------------

// E10Row is one (rule count × master size) cell comparing the compiled
// agenda-scheduled chase (core.Chaser.ChaseScratch — the zero-alloc
// executor for consume-before-next-call loops; pipeline workers use
// Chaser.Chase, which allocates the results their resequencing window
// retains but shares every other compiled-path win) with the legacy
// round-robin loop (core.Engine.ChaseLegacy).
// The acceptance claims of the compiled-program rework read directly
// off the row: Speedup grows with the rule count (the agenda touches
// only ready rules where the legacy loop rescans the whole set every
// round), stays ≥ ~1 at one rule (the compile adds no per-tuple cost),
// and CompiledAllocsPerFix is 0 in steady state while the legacy loop
// pays per-call maps, slices and key strings.
type E10Row struct {
	// Rules is the rule-set size of this cell.
	Rules int `json:"rules"`
	// MasterSize is the number of master tuples.
	MasterSize int `json:"master_size"`
	// CompiledNsPerFix and LegacyNsPerFix are steady-state wall times
	// per chase (ns) over the same input tuples and validated seed.
	CompiledNsPerFix float64 `json:"compiled_ns_per_fix"`
	LegacyNsPerFix   float64 `json:"legacy_ns_per_fix"`
	// Speedup is LegacyNsPerFix / CompiledNsPerFix.
	Speedup float64 `json:"speedup"`
	// CompiledAllocsPerFix and LegacyAllocsPerFix are mean heap
	// allocations per chase (runtime mallocs delta / probes).
	CompiledAllocsPerFix float64 `json:"compiled_allocs_per_fix"`
	LegacyAllocsPerFix   float64 `json:"legacy_allocs_per_fix"`
}

// ruleSetOfSize builds a rule set with exactly n rules by cycling the
// demo rules with fresh IDs (clones are semantically idempotent, so
// extra copies add scan cost — the quantity under test — without
// changing any fix).
func ruleSetOfSize(n int) (*rule.Set, error) {
	base := dataset.DemoRules().Rules()
	out, err := rule.NewSet()
	if err != nil {
		return nil, err
	}
	for i := 0; i < n; i++ {
		cp := base[i%len(base)].Clone()
		if i >= len(base) {
			cp.ID = fmt.Sprintf("%s_c%d", cp.ID, i/len(base))
		}
		if err := out.Add(cp); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// chaseResultsAgree deep-compares a compiled and a legacy chase result.
func chaseResultsAgree(a, b *core.ChaseResult) bool {
	if !a.Tuple.Equal(b.Tuple) || a.Validated != b.Validated ||
		a.Rounds != b.Rounds ||
		len(a.Changes) != len(b.Changes) || len(a.Conflicts) != len(b.Conflicts) {
		return false
	}
	for i := range a.Changes {
		if a.Changes[i] != b.Changes[i] {
			return false
		}
	}
	for i := range a.Conflicts {
		if a.Conflicts[i] != b.Conflicts[i] {
			return false
		}
	}
	return true
}

// mallocs reads the cumulative heap-allocation count.
func mallocs() uint64 {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return ms.Mallocs
}

// RunE10 sweeps rule counts × master sizes, measuring steady-state
// chase latency and allocations for the compiled program and the
// legacy loop, asserting on the fly that the two produce identical
// results (a latency number for a wrong answer would be worthless).
// Inputs are clean tuples with {zip, phn, type, item} pre-validated,
// so every chase does productive work (validating the remaining
// attributes against master) on the conflict-free happy path the
// zero-alloc contract covers.
func RunE10(ruleCounts, sizes []int, probes int, seed uint64) ([]E10Row, error) {
	seedSet := schema.SetOfNames(dataset.CustSchema(), "zip", "phn", "type", "item")
	var rows []E10Row
	for _, size := range sizes {
		g := dataset.NewCustomerGen(seed)
		entities := g.GenerateEntities(size)
		st, err := dataset.MasterStore(entities)
		if err != nil {
			return nil, err
		}
		inputs := make([]*schema.Tuple, probes)
		for i := range inputs {
			inputs[i] = g.CleanInput(entities[i%size])
		}
		for _, nRules := range ruleCounts {
			rs, err := ruleSetOfSize(nRules)
			if err != nil {
				return nil, err
			}
			eng, err := core.NewEngine(dataset.CustSchema(), rs, st)
			if err != nil {
				return nil, err
			}
			ch := eng.NewChaser()
			// Parity gate + scratch warm-up: EVERY probe must agree
			// before either path is timed (the printed claim promises
			// full verification, not a sampled prefix).
			for _, tu := range inputs {
				if !chaseResultsAgree(ch.ChaseScratch(tu, seedSet), eng.ChaseLegacy(tu, seedSet)) {
					return nil, fmt.Errorf("e10: compiled and legacy chases disagree at %d rules, size %d", nRules, size)
				}
			}
			row := E10Row{Rules: nRules, MasterSize: size}

			runtime.GC()
			m0 := mallocs()
			start := time.Now()
			for _, tu := range inputs {
				ch.ChaseScratch(tu, seedSet)
			}
			row.CompiledNsPerFix = float64(time.Since(start).Nanoseconds()) / float64(len(inputs))
			row.CompiledAllocsPerFix = float64(mallocs()-m0) / float64(len(inputs))

			runtime.GC()
			m0 = mallocs()
			start = time.Now()
			for _, tu := range inputs {
				eng.ChaseLegacy(tu, seedSet)
			}
			row.LegacyNsPerFix = float64(time.Since(start).Nanoseconds()) / float64(len(inputs))
			row.LegacyAllocsPerFix = float64(mallocs()-m0) / float64(len(inputs))

			if row.CompiledNsPerFix > 0 {
				row.Speedup = row.LegacyNsPerFix / row.CompiledNsPerFix
			}
			rows = append(rows, row)
		}
	}
	return rows, nil
}

// --- E11: zero-alloc pipeline — throughput & allocs per tuple ----------

// E11Row is one (path × worker count) end-to-end pipeline measurement:
// source decode → sharded chase → ordered sink encode, through the
// recycled batch arenas. The acceptance claims of the zero-alloc
// pipeline rework read directly off the row: AllocsPerTuple collapses
// to a small constant (O(window) per run amortized over the input, vs
// the per-tuple boxing of the baseline), and TuplesPerSec scales with
// workers where cores allow.
type E11Row struct {
	// Path is the I/O shape: "slice", "csv" or "jsonl".
	Path string `json:"path"`
	// Workers is the pipeline worker count.
	Workers int `json:"workers"`
	// NsPerTuple is mean wall time per tuple, end to end.
	NsPerTuple float64 `json:"ns_per_tuple"`
	// TuplesPerSec is the end-to-end throughput.
	TuplesPerSec float64 `json:"tuples_per_sec"`
	// AllocsPerTuple is mean heap allocations per tuple (runtime
	// mallocs delta / tuples), whole pipeline run included.
	AllocsPerTuple float64 `json:"allocs_per_tuple"`
	// Speedup is TuplesPerSec relative to the same path's first
	// (1-worker) row.
	Speedup float64 `json:"speedup_vs_1w"`
}

// E11Baseline is the pre-recycling reference for one path: the PR 4
// steady state — per-tuple source decode into fresh tuples, an
// allocating chase result per tuple, encoding/json per record —
// measured sequentially. Its output bytes are also the parity oracle
// every pipeline run is gated against.
type E11Baseline struct {
	Path           string  `json:"path"`
	NsPerTuple     float64 `json:"ns_per_tuple"`
	AllocsPerTuple float64 `json:"allocs_per_tuple"`
}

// e11VerifyWriter compares everything written against a want buffer
// without retaining or allocating — the in-flight parity gate of E11.
type e11VerifyWriter struct {
	want []byte
	off  int
	bad  bool
}

func (w *e11VerifyWriter) Write(p []byte) (int, error) {
	if w.off+len(p) > len(w.want) || !bytes.Equal(w.want[w.off:w.off+len(p)], p) {
		w.bad = true
	}
	w.off += len(p)
	return len(p), nil
}

func (w *e11VerifyWriter) ok() bool { return !w.bad && w.off == len(w.want) }

// e11JSONLRecord mirrors pipeline.JSONLSink's wire shape for the
// baseline encoder.
type e11JSONLRecord struct {
	Tuple     map[string]string `json:"tuple"`
	Done      bool              `json:"done"`
	Conflicts []string          `json:"conflicts,omitempty"`
	Rewrites  int               `json:"rewrites"`
}

// RunE11 measures end-to-end batch-repair throughput and allocations
// per tuple for the recycled pipeline across worker counts and I/O
// paths, against a sequential PR 4-style baseline whose output every
// run must reproduce byte for byte (a throughput number for different
// bytes would be worthless).
func RunE11(workerCounts []int, nEntities, nInputs int, seed uint64) ([]E11Row, []E11Baseline, error) {
	g := dataset.NewCustomerGen(seed)
	w, err := g.GenerateWorkload(nEntities, nInputs, 0.3, nil)
	if err != nil {
		return nil, nil, err
	}
	eng, err := core.NewEngine(dataset.CustSchema(), dataset.DemoRules(), w.Store)
	if err != nil {
		return nil, nil, err
	}
	sch := dataset.CustSchema()
	seedSet := schema.SetOfNames(sch, "zip", "phn", "type", "item")
	n := len(w.Dirty)

	// Materialize the streaming inputs once.
	var csvIn bytes.Buffer
	cw := csv.NewWriter(&csvIn)
	if err := cw.Write(sch.AttrNames()); err != nil {
		return nil, nil, err
	}
	for _, tu := range w.Dirty {
		if err := cw.Write(tu.Vals.Strings()); err != nil {
			return nil, nil, err
		}
	}
	cw.Flush()
	var jsonlIn bytes.Buffer
	jenc := json.NewEncoder(&jsonlIn)
	for _, tu := range w.Dirty {
		if err := jenc.Encode(tu.Map()); err != nil {
			return nil, nil, err
		}
	}

	// Baselines: sequential, per-tuple boxing, encoding/json — the
	// shape of the pre-recycling pipeline. Each also renders the
	// expected output bytes for its path's parity gate.
	want := map[string][]byte{}
	var baselines []E11Baseline
	runBaseline := func(path string, mk func(out io.Writer) (func() (*schema.Tuple, error), func(*core.ChaseResult) error)) error {
		var out bytes.Buffer
		next, emit := mk(&out)
		chaser := eng.AcquireChaser()
		defer chaser.Release()
		runtime.GC()
		m0 := mallocs()
		start := time.Now()
		count := 0
		for {
			tu, err := next()
			if err == io.EOF {
				break
			}
			if err != nil {
				return err
			}
			res := chaser.Chase(tu, seedSet) // allocating result, as PR 4 workers did
			if err := emit(res); err != nil {
				return err
			}
			count++
		}
		elapsed := time.Since(start)
		allocs := mallocs() - m0
		if count != n {
			return fmt.Errorf("e11 baseline %s: %d of %d tuples", path, count, n)
		}
		want[path] = append([]byte(nil), out.Bytes()...)
		baselines = append(baselines, E11Baseline{
			Path:           path,
			NsPerTuple:     float64(elapsed.Nanoseconds()) / float64(n),
			AllocsPerTuple: float64(allocs) / float64(n),
		})
		return nil
	}
	// slice path: in-memory tuples, TupleResult records (the jobs
	// artifact / HTTP results shape).
	if err := runBaseline("slice", func(out io.Writer) (func() (*schema.Tuple, error), func(*core.ChaseResult) error) {
		enc := json.NewEncoder(out)
		i := 0
		next := func() (*schema.Tuple, error) {
			if i >= n {
				return nil, io.EOF
			}
			tu := w.Dirty[i]
			i++
			return tu, nil
		}
		emit := func(res *core.ChaseResult) error {
			return enc.Encode(jobs.NewTupleResult(sch, &pipeline.Result{Input: res.Tuple, Fixed: res.Tuple, Chase: res}))
		}
		return next, emit
	}); err != nil {
		return nil, nil, err
	}

	// csv path: fresh-record CSV decode, Strings() encode.
	if err := runBaseline("csv", func(out io.Writer) (func() (*schema.Tuple, error), func(*core.ChaseResult) error) {
		cr := csv.NewReader(bytes.NewReader(csvIn.Bytes()))
		header, err := cr.Read()
		_ = header
		outW := csv.NewWriter(out)
		_ = outW.Write(sch.AttrNames())
		next := func() (*schema.Tuple, error) {
			if err != nil {
				return nil, err
			}
			rec, rerr := cr.Read()
			if rerr != nil {
				if rerr == io.EOF {
					outW.Flush()
				}
				return nil, rerr
			}
			vals := make(value.List, sch.Len())
			for i, cell := range rec {
				vals[i] = value.V(cell) // header == schema order by construction
			}
			return &schema.Tuple{Schema: sch, Vals: vals}, nil
		}
		emit := func(res *core.ChaseResult) error { return outW.Write(res.Tuple.Vals.Strings()) }
		return next, emit
	}); err != nil {
		return nil, nil, err
	}

	// jsonl path: map-decode per line, jsonlRecord encode per result.
	if err := runBaseline("jsonl", func(out io.Writer) (func() (*schema.Tuple, error), func(*core.ChaseResult) error) {
		sc := bufio.NewScanner(bytes.NewReader(jsonlIn.Bytes()))
		enc := json.NewEncoder(out)
		next := func() (*schema.Tuple, error) {
			for sc.Scan() {
				line := sc.Bytes()
				if len(line) == 0 {
					continue
				}
				var m map[string]string
				if err := json.Unmarshal(line, &m); err != nil {
					return nil, err
				}
				return schema.TupleFromMap(sch, m)
			}
			if err := sc.Err(); err != nil {
				return nil, err
			}
			return nil, io.EOF
		}
		emit := func(res *core.ChaseResult) error {
			rec := e11JSONLRecord{Tuple: res.Tuple.Map(), Done: res.AllValidated() && len(res.Conflicts) == 0, Rewrites: len(res.Rewrites())}
			for _, c := range res.Conflicts {
				rec.Conflicts = append(rec.Conflicts, c.Error())
			}
			return enc.Encode(rec)
		}
		return next, emit
	}); err != nil {
		return nil, nil, err
	}

	// Pipeline runs: every (path × workers) cell, parity-gated against
	// the baseline bytes.
	var rows []E11Row
	for _, path := range []string{"slice", "csv", "jsonl"} {
		for _, workers := range workerCounts {
			mkRun := func(verify *e11VerifyWriter) (pipeline.Source, pipeline.Sink, func() error, error) {
				switch path {
				case "slice":
					enc := jobs.NewResultEncoder(sch)
					var line []byte
					sink := pipeline.SinkFunc(func(r *pipeline.Result) error {
						line = enc.Append(line[:0], r)
						line = append(line, '\n')
						_, err := verify.Write(line)
						return err
					})
					return pipeline.NewSliceSource(w.Dirty), sink, nil, nil
				case "csv":
					src, err := pipeline.NewCSVSource(sch, bytes.NewReader(csvIn.Bytes()))
					if err != nil {
						return nil, nil, nil, err
					}
					sink, err := pipeline.NewCSVSink(sch, verify)
					if err != nil {
						return nil, nil, nil, err
					}
					return src, sink, sink.Flush, nil
				default:
					return pipeline.NewJSONLSource(sch, bytes.NewReader(jsonlIn.Bytes())), pipeline.NewJSONLSink(verify), nil, nil
				}
			}
			measure := func() (time.Duration, uint64, error) {
				verify := &e11VerifyWriter{want: want[path]}
				src, sink, flush, err := mkRun(verify)
				if err != nil {
					return 0, 0, err
				}
				runtime.GC()
				m0 := mallocs()
				start := time.Now()
				stats, err := pipeline.Run(context.Background(), eng, seedSet, src, sink, &pipeline.Options{Workers: workers})
				if err != nil {
					return 0, 0, err
				}
				if flush != nil {
					if err := flush(); err != nil {
						return 0, 0, err
					}
				}
				elapsed := time.Since(start)
				allocs := mallocs() - m0
				if stats.Tuples != n {
					return 0, 0, fmt.Errorf("e11 %s/%dw: %d of %d tuples", path, workers, stats.Tuples, n)
				}
				if !verify.ok() {
					return 0, 0, fmt.Errorf("e11 %s/%dw: output differs from the sequential baseline", path, workers)
				}
				return elapsed, allocs, nil
			}
			// Warm run (chaser pool, schema bindings), then the
			// measured run.
			if _, _, err := measure(); err != nil {
				return nil, nil, err
			}
			elapsed, allocs, err := measure()
			if err != nil {
				return nil, nil, err
			}
			rows = append(rows, E11Row{
				Path:           path,
				Workers:        workers,
				NsPerTuple:     float64(elapsed.Nanoseconds()) / float64(n),
				TuplesPerSec:   float64(n) / elapsed.Seconds(),
				AllocsPerTuple: float64(allocs) / float64(n),
			})
		}
	}
	// Speedups: per path, relative to its 1-worker row — or, when 1 is
	// not among the requested counts, the lowest worker count run (so
	// an order like "8,4,1" cannot invert the column's meaning).
	base := map[string]float64{}
	baseWorkers := map[string]int{}
	for i := range rows {
		r := &rows[i]
		if cur, ok := baseWorkers[r.Path]; !ok || r.Workers < cur {
			baseWorkers[r.Path] = r.Workers
			base[r.Path] = r.TuplesPerSec
		}
	}
	for i := range rows {
		rows[i].Speedup = rows[i].TuplesPerSec / base[rows[i].Path]
	}
	return rows, baselines, nil
}

// --- E12: memory-scale master data --------------------------------------

// E12Row is one master size of the memory-scale experiment: the byte
// cost of a master row in the boxed (map-of-tuples) layout vs the
// columnar frozen layout, snapshot latency in both layouts, and the
// persistence cost of a save in the checkpoint (rewrite master.csv)
// vs WAL-append (fsync a few records) regime. Chase output over the
// same probes must be byte-identical before and after packing — a
// memory number for a wrong answer would be worthless — so every row
// in this table is parity-gated.
type E12Row struct {
	// MasterSize is the number of generated master tuples.
	MasterSize int `json:"master_size"`
	// BoxedBytesPerRow and PackedBytesPerRow are the table's own byte
	// accounting divided by row count, before and after PackColumnar.
	// The packed figure is exact (8 bytes id + 4 bytes per cell); the
	// boxed figure is the estimator rowBoxedCost documents.
	BoxedBytesPerRow  float64 `json:"boxed_bytes_per_row"`
	PackedBytesPerRow float64 `json:"packed_bytes_per_row"`
	// Reduction is BoxedBytesPerRow / PackedBytesPerRow.
	Reduction float64 `json:"bytes_per_row_reduction"`
	// DictBytes is the interning dictionary footprint (shared across
	// every snapshot and generation, amortized over all rows).
	DictBytes int64 `json:"dict_bytes"`
	// HeapSavedBytes corroborates the accounting with the runtime: the
	// drop in live HeapAlloc across the pack (after a full GC on both
	// sides).
	HeapSavedBytes int64 `json:"heap_saved_bytes"`
	// PackNs is the wall time of PackColumnar over the whole table;
	// PackedShards the shards it converted.
	PackNs       int64 `json:"pack_ns"`
	PackedShards int   `json:"packed_shards"`
	// SnapshotNsBoxed/Packed are min-of-reps COW capture latencies
	// (each after a live insert, so no capture reuses a cached one).
	// Packing must not disturb the O(1) snapshot contract.
	SnapshotNsBoxed  int64 `json:"snapshot_ns_boxed"`
	SnapshotNsPacked int64 `json:"snapshot_ns_packed"`
	// SaveCheckpointNs is a full Save (rewrite + directory swap);
	// SaveAppendNs is a Save after one more insert (WAL append +
	// fsync). SaveSpeedup is their ratio — the point of the WAL.
	SaveCheckpointNs int64   `json:"save_checkpoint_ns"`
	SaveAppendNs     int64   `json:"save_append_ns"`
	SaveSpeedup      float64 `json:"save_speedup"`
	// LoadNs rebuilds the system from checkpoint + WAL replay.
	LoadNs int64 `json:"load_ns"`
	// ParityProbes counts the chases compared pre/post pack.
	ParityProbes int `json:"parity_probes"`
}

// heapAlloc returns live heap bytes after a full collection.
func heapAlloc() uint64 {
	runtime.GC()
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return ms.HeapAlloc
}

// RunE12 measures the memory-scale rework: interned + columnar master
// layout and WAL-based incremental persistence, per master size.
func RunE12(sizes []int, probes int, seed uint64) ([]E12Row, error) {
	const snapReps = 5
	seedSet := schema.SetOfNames(dataset.CustSchema(), "zip", "phn", "type", "item")
	tmp, err := os.MkdirTemp("", "cerfix-e12-")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(tmp)

	var rows []E12Row
	for _, n := range sizes {
		g := dataset.NewCustomerGen(seed)
		// Extra entities feed the snapshot-latency and WAL-append
		// probes without colliding with the n loaded rows.
		entities := g.GenerateEntities(n + 2*snapReps + 1)
		sys, err := cerfix.NewWithRules(dataset.CustSchema(), dataset.PersonSchema(), dataset.DemoRules())
		if err != nil {
			return nil, err
		}
		st := sys.Master()
		tb := st.Table()
		for _, e := range entities[:n] {
			if _, err := tb.InsertValues(e.Master...); err != nil {
				return nil, err
			}
		}
		if err := st.PrepareForRules(dataset.DemoRules()); err != nil {
			return nil, err
		}
		inputs := make([]*schema.Tuple, probes)
		for i := range inputs {
			inputs[i] = g.CleanInput(entities[i%n])
		}
		extra := entities[n:]

		// Boxed-layout probe results (the parity baseline) and boxed
		// accounting.
		eng := sys.Engine()
		pre := make([]*core.ChaseResult, len(inputs))
		ch := eng.Snapshot().NewChaser()
		for i, tu := range inputs {
			pre[i] = ch.Chase(tu, seedSet)
		}
		row := E12Row{MasterSize: n, ParityProbes: len(inputs)}
		mem := sys.MemStats()
		if mem.Table.Rows == 0 || mem.Table.BoxedBytes == 0 {
			return nil, fmt.Errorf("e12: empty boxed accounting at size %d", n)
		}
		row.BoxedBytesPerRow = float64(mem.Table.BoxedBytes) / float64(mem.Table.Rows)

		// Boxed snapshot latency (insert first so no capture is cached).
		for i := 0; i < snapReps; i++ {
			if _, err := st.InsertValues(extra[i].Master...); err != nil {
				return nil, err
			}
			start := time.Now()
			snap := eng.Snapshot()
			el := time.Since(start).Nanoseconds()
			if row.SnapshotNsBoxed == 0 || el < row.SnapshotNsBoxed {
				row.SnapshotNsBoxed = el
			}
			if snap.Master().Len() != st.Len() {
				return nil, fmt.Errorf("e12: snapshot lost rows at size %d", n)
			}
		}

		// Pack, with the runtime watching the heap on both sides.
		heapBefore := heapAlloc()
		start := time.Now()
		row.PackedShards = sys.PackMaster(0)
		row.PackNs = time.Since(start).Nanoseconds()
		if row.PackedShards == 0 {
			return nil, fmt.Errorf("e12: nothing packed at size %d", n)
		}
		// The pre-pack frozen view stays referenced by the
		// generation-snapshot caches until a fresh capture replaces
		// them; refresh so the boxed shard maps are collectable before
		// the after-side heap reading.
		eng.Snapshot()
		row.HeapSavedBytes = int64(heapBefore) - int64(heapAlloc())
		mem = sys.MemStats()
		if mem.Table.PackedRows == 0 {
			return nil, fmt.Errorf("e12: no packed rows at size %d", n)
		}
		row.PackedBytesPerRow = float64(mem.Table.PackedBytes) / float64(mem.Table.PackedRows)
		row.Reduction = row.BoxedBytesPerRow / row.PackedBytesPerRow
		row.DictBytes = mem.Table.Dict.Bytes

		// Parity gate: the packed layout must chase byte-identically.
		ch = eng.Snapshot().NewChaser()
		for i, tu := range inputs {
			if !chaseResultsAgree(pre[i], ch.Chase(tu, seedSet)) {
				return nil, fmt.Errorf("e12: packed chase diverged at size %d probe %d", n, i)
			}
		}

		// Packed snapshot latency.
		for i := snapReps; i < 2*snapReps; i++ {
			if _, err := st.InsertValues(extra[i].Master...); err != nil {
				return nil, err
			}
			start := time.Now()
			eng.Snapshot()
			el := time.Since(start).Nanoseconds()
			if row.SnapshotNsPacked == 0 || el < row.SnapshotNsPacked {
				row.SnapshotNsPacked = el
			}
		}

		// Persistence: full checkpoint, then a one-insert WAL append,
		// then a load (checkpoint + replay).
		dir := filepath.Join(tmp, fmt.Sprintf("instance-%d", n))
		start = time.Now()
		if err := sys.Save(dir); err != nil {
			return nil, err
		}
		row.SaveCheckpointNs = time.Since(start).Nanoseconds()
		if _, err := st.InsertValues(extra[2*snapReps].Master...); err != nil {
			return nil, err
		}
		start = time.Now()
		if err := sys.Save(dir); err != nil {
			return nil, err
		}
		row.SaveAppendNs = time.Since(start).Nanoseconds()
		if row.SaveAppendNs > 0 {
			row.SaveSpeedup = float64(row.SaveCheckpointNs) / float64(row.SaveAppendNs)
		}
		if _, err := os.Stat(filepath.Join(dir, "wal.jsonl")); err != nil {
			return nil, fmt.Errorf("e12: append save wrote no WAL at size %d: %w", n, err)
		}
		start = time.Now()
		loaded, err := cerfix.Load(dir)
		if err != nil {
			return nil, err
		}
		row.LoadNs = time.Since(start).Nanoseconds()
		if loaded.Master().Len() != st.Len() {
			return nil, fmt.Errorf("e12: load got %d rows, want %d", loaded.Master().Len(), st.Len())
		}
		info := loaded.LoadInfo()
		if info == nil || info.WALRows != 1 {
			return nil, fmt.Errorf("e12: load did not replay the WAL append: %+v", info)
		}
		os.RemoveAll(dir) // free disk before the next size
		rows = append(rows, row)
	}
	return rows, nil
}

// --- E13: simd scanning & premise prefilter ----------------------------

// E13ScanRow is one input-format row scan measurement: the stdlib
// reference decoder (bufio.Scanner + encoding/json, or encoding/csv)
// against the simd-scanned pipeline source, over the same bytes, with
// every decoded tuple compared before either side is timed.
type E13ScanRow struct {
	// Format is "jsonl" or "csv".
	Format string `json:"format"`
	// Kernel is the simd dispatch table in effect (simd.Active()).
	Kernel string `json:"kernel"`
	// MegaBytes is the input size; Tuples the row count.
	MegaBytes float64 `json:"megabytes"`
	Tuples    int     `json:"tuples"`
	// RefNsPerTuple/RefMBPerSec time the stdlib reference decoder.
	RefNsPerTuple float64 `json:"ref_ns_per_tuple"`
	RefMBPerSec   float64 `json:"ref_mb_per_sec"`
	// SimdNsPerTuple/SimdMBPerSec time the pipeline source.
	SimdNsPerTuple float64 `json:"simd_ns_per_tuple"`
	SimdMBPerSec   float64 `json:"simd_mb_per_sec"`
	// Speedup is SimdMBPerSec / RefMBPerSec.
	Speedup float64 `json:"speedup"`
}

// E13ChaseRow is one rule-count cell of the prefilter measurement:
// the same chaser with the premise prefilter on vs off over identical
// dirty inputs, parity-gated against the legacy oracle first.
type E13ChaseRow struct {
	Rules      int `json:"rules"`
	MasterSize int `json:"master_size"`
	// Mode is the store's lookup mode for the row. On rule-index a
	// dictionary miss already short-circuits inside the probe, so the
	// prefilter's margin is thin; on plain-index and scan a skipped
	// rule saves a real key projection plus an index probe or a full
	// relation scan.
	Mode string `json:"mode"`
	// BaselineNsPerFix times the prefilter-off chase (the pre-PR
	// agenda), PrefilterNsPerFix the prefilter-on chase.
	BaselineNsPerFix  float64 `json:"baseline_ns_per_fix"`
	PrefilterNsPerFix float64 `json:"prefilter_ns_per_fix"`
	// Speedup is BaselineNsPerFix / PrefilterNsPerFix.
	Speedup float64 `json:"speedup"`
	// RulesSkipped/RulesEvaluated are the prefilter-on run's agenda
	// counters; SkipRate = skipped / (skipped + evaluated).
	RulesSkipped   int64   `json:"rules_skipped"`
	RulesEvaluated int64   `json:"rules_evaluated"`
	SkipRate       float64 `json:"skip_rate"`
}

// e13ScanPasses and e13ChasePasses are the best-of-N pass counts.
// Scan passes are milliseconds, so N can be high; a forced-scan chase
// pass is seconds, so N stays small.
const (
	e13ScanPasses  = 10
	e13ChasePasses = 5
)

// decodeAll drains a tuple source, cloning values into out for the
// parity gate (pass nil to just count).
func decodeAll(next func() (*schema.Tuple, error), out *[]value.List) (int, error) {
	n := 0
	for {
		tu, err := next()
		if err == io.EOF {
			return n, nil
		}
		if err != nil {
			return n, err
		}
		if out != nil {
			*out = append(*out, append(value.List(nil), tu.Vals...))
		}
		n++
	}
}

// RunE13 measures the PR's two hot-path claims. Scan: JSONL and CSV
// row decoding via the simd-scanned sources vs the exact stdlib
// decoders they replaced, parity-gated tuple by tuple. Chase: the
// premise prefilter on vs off at growing rule counts over dirty
// inputs (whose noised key values miss the master dictionary — the
// case the match-mask reject serves), parity-gated against
// Engine.ChaseLegacy, reporting the skip rate alongside the latency.
func RunE13(scanTuples int, ruleCounts []int, masterSize, probes int, seed uint64) ([]E13ScanRow, []E13ChaseRow, error) {
	sch := dataset.CustSchema()
	g := dataset.NewCustomerGen(seed)
	w, err := g.GenerateWorkload(100, scanTuples, 0.3, nil)
	if err != nil {
		return nil, nil, err
	}

	// Materialize the two stream shapes once.
	var csvIn bytes.Buffer
	cw := csv.NewWriter(&csvIn)
	if err := cw.Write(sch.AttrNames()); err != nil {
		return nil, nil, err
	}
	for _, tu := range w.Dirty {
		if err := cw.Write(tu.Vals.Strings()); err != nil {
			return nil, nil, err
		}
	}
	cw.Flush()
	var jsonlIn bytes.Buffer
	jenc := json.NewEncoder(&jsonlIn)
	for _, tu := range w.Dirty {
		if err := jenc.Encode(tu.Map()); err != nil {
			return nil, nil, err
		}
	}

	refJSONL := func(r io.Reader) func() (*schema.Tuple, error) {
		sc := bufio.NewScanner(r)
		sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
		return func() (*schema.Tuple, error) {
			for sc.Scan() {
				line := sc.Bytes()
				if len(line) == 0 {
					continue
				}
				m := make(map[string]string)
				if err := json.Unmarshal(line, &m); err != nil {
					return nil, err
				}
				return schema.TupleFromMap(sch, m)
			}
			if err := sc.Err(); err != nil {
				return nil, err
			}
			return nil, io.EOF
		}
	}
	refCSV := func(r io.Reader) func() (*schema.Tuple, error) {
		cr := csv.NewReader(r)
		if _, err := cr.Read(); err != nil { // header
			return func() (*schema.Tuple, error) { return nil, err }
		}
		cr.ReuseRecord = true
		tu := &schema.Tuple{Schema: sch, Vals: make(value.List, sch.Len())}
		return func() (*schema.Tuple, error) {
			rec, err := cr.Read()
			if err != nil {
				return nil, err
			}
			for i, cell := range rec {
				tu.Vals[i] = value.V(cell)
			}
			return tu, nil
		}
	}
	newJSONL := func(r io.Reader) func() (*schema.Tuple, error) {
		return pipeline.NewJSONLSource(sch, r).Next
	}
	newCSV := func(r io.Reader) func() (*schema.Tuple, error) {
		src, err := pipeline.NewCSVSource(sch, r)
		if err != nil {
			return func() (*schema.Tuple, error) { return nil, err }
		}
		return src.Next
	}

	var scanRows []E13ScanRow
	for _, c := range []struct {
		format   string
		input    []byte
		ref, new func(io.Reader) func() (*schema.Tuple, error)
	}{
		{"jsonl", jsonlIn.Bytes(), refJSONL, newJSONL},
		{"csv", csvIn.Bytes(), refCSV, newCSV},
	} {
		// Parity gate: every decoded tuple must agree before either
		// decoder is timed.
		var wantVals, gotVals []value.List
		if _, err := decodeAll(c.ref(bytes.NewReader(c.input)), &wantVals); err != nil {
			return nil, nil, fmt.Errorf("e13 %s reference decode: %w", c.format, err)
		}
		if _, err := decodeAll(c.new(bytes.NewReader(c.input)), &gotVals); err != nil {
			return nil, nil, fmt.Errorf("e13 %s simd decode: %w", c.format, err)
		}
		if len(wantVals) != len(gotVals) {
			return nil, nil, fmt.Errorf("e13 %s: %d tuples vs %d from reference", c.format, len(gotVals), len(wantVals))
		}
		for i := range wantVals {
			for j := range wantVals[i] {
				if wantVals[i][j] != gotVals[i][j] {
					return nil, nil, fmt.Errorf("e13 %s: tuple %d attr %d: %q vs reference %q",
						c.format, i, j, gotVals[i][j], wantVals[i][j])
				}
			}
		}
		row := E13ScanRow{
			Format:    c.format,
			Kernel:    simd.Active(),
			MegaBytes: float64(len(c.input)) / 1e6,
			Tuples:    len(wantVals),
		}
		// Best-of-N: both decoders get the same treatment, and the
		// minimum is robust to GC pauses and scheduler interference.
		timeDecode := func(mk func(io.Reader) func() (*schema.Tuple, error)) (float64, error) {
			best := math.Inf(1)
			for p := 0; p < e13ScanPasses; p++ {
				runtime.GC()
				start := time.Now()
				n, err := decodeAll(mk(bytes.NewReader(c.input)), nil)
				elapsed := time.Since(start)
				if err != nil {
					return 0, err
				}
				if n != row.Tuples {
					return 0, fmt.Errorf("decoded %d of %d tuples", n, row.Tuples)
				}
				if ns := float64(elapsed.Nanoseconds()); ns < best {
					best = ns
				}
			}
			return best, nil
		}
		refNs, err := timeDecode(c.ref)
		if err != nil {
			return nil, nil, fmt.Errorf("e13 %s reference: %w", c.format, err)
		}
		simdNs, err := timeDecode(c.new)
		if err != nil {
			return nil, nil, fmt.Errorf("e13 %s simd: %w", c.format, err)
		}
		row.RefNsPerTuple = refNs / float64(row.Tuples)
		row.SimdNsPerTuple = simdNs / float64(row.Tuples)
		row.RefMBPerSec = float64(len(c.input)) / 1e6 / (refNs / 1e9)
		row.SimdMBPerSec = float64(len(c.input)) / 1e6 / (simdNs / 1e9)
		if row.RefMBPerSec > 0 {
			row.Speedup = row.SimdMBPerSec / row.RefMBPerSec
		}
		scanRows = append(scanRows, row)
	}

	// Chase: prefilter on vs off at growing rule counts. Dirty inputs
	// with noised key cells are the prefilter's target case — a noised
	// value misses the master dictionary and rejects every rule probing
	// it before the agenda sees them.
	seedSet := schema.SetOfNames(sch, "zip", "phn", "type", "item")
	cg := dataset.NewCustomerGen(seed + 1)
	cw2, err := cg.GenerateWorkload(masterSize, probes, 0.4, nil)
	if err != nil {
		return nil, nil, err
	}
	st := cw2.Store
	inputs := cw2.Dirty

	var chaseRows []E13ChaseRow
	modes := []master.LookupMode{master.ModeRuleIndex, master.ModePlainIndex, master.ModeScan}
	defer st.SetMode(master.ModeRuleIndex)
	for _, nRules := range ruleCounts {
		rs, err := ruleSetOfSize(nRules)
		if err != nil {
			return nil, nil, err
		}
		eng, err := core.NewEngine(sch, rs, st)
		if err != nil {
			return nil, nil, err
		}
		on := eng.NewChaser()
		off := eng.NewChaser()
		off.SetPrefilter(false)
		for _, mode := range modes {
			st.SetMode(mode)
			// Parity gate + warm-up: every probe, both configurations,
			// against the legacy oracle under the same mode.
			for _, tu := range inputs {
				want := eng.ChaseLegacy(tu, seedSet)
				if !chaseResultsAgree(on.ChaseScratch(tu, seedSet), want) {
					return nil, nil, fmt.Errorf("e13: prefiltered chase diverges from legacy at %d rules (%s)", nRules, mode)
				}
				if !chaseResultsAgree(off.ChaseScratch(tu, seedSet), want) {
					return nil, nil, fmt.Errorf("e13: prefilter-off chase diverges from legacy at %d rules (%s)", nRules, mode)
				}
			}
			row := E13ChaseRow{Rules: nRules, MasterSize: masterSize, Mode: mode.String()}

			// Best-of-N timing with the two configurations interleaved
			// pass by pass: the minimum is robust to GC pauses, and
			// interleaving keeps slow machine drift from loading one
			// side of the comparison.
			pass := func(c *core.Chaser) float64 {
				runtime.GC()
				start := time.Now()
				for _, tu := range inputs {
					c.ChaseScratch(tu, seedSet)
				}
				return float64(time.Since(start).Nanoseconds()) / float64(len(inputs))
			}
			// Counter deltas bracket the first prefiltered pass alone:
			// the program-lifetime totals also tick during off passes
			// (0 skips, full evaluations) and would dilute the rate.
			skip0, eval0 := eng.PrefilterStats()
			bestOn := pass(on)
			skip1, eval1 := eng.PrefilterStats()
			row.RulesSkipped = skip1 - skip0
			row.RulesEvaluated = eval1 - eval0
			if total := row.RulesSkipped + row.RulesEvaluated; total > 0 {
				row.SkipRate = float64(row.RulesSkipped) / float64(total)
			}
			bestOff := pass(off)
			for p := 1; p < e13ChasePasses; p++ {
				if ns := pass(on); ns < bestOn {
					bestOn = ns
				}
				if ns := pass(off); ns < bestOff {
					bestOff = ns
				}
			}
			row.PrefilterNsPerFix = bestOn
			row.BaselineNsPerFix = bestOff
			if row.PrefilterNsPerFix > 0 {
				row.Speedup = row.BaselineNsPerFix / row.PrefilterNsPerFix
			}
			chaseRows = append(chaseRows, row)
		}
	}
	return scanRows, chaseRows, nil
}
