// Package textutil provides small shared helpers used across CerFix:
// a deterministic splittable PRNG (so every test, example and benchmark
// is reproducible without math/rand global state), string-distance
// functions used by the noise injector and the repair-cost model, and
// light formatting utilities.
package textutil

// RNG is a small deterministic pseudo-random number generator based on
// SplitMix64. It is intentionally not cryptographic; it exists so that
// dataset generation, noise injection and probe-based checks are fully
// reproducible from a single seed and can be split into independent
// streams (one per table, per column, per experiment) without the
// streams interfering with each other.
type RNG struct {
	state uint64
}

// NewRNG returns a generator seeded with seed. Two RNGs built from the
// same seed produce identical sequences.
func NewRNG(seed uint64) *RNG {
	return &RNG{state: seed}
}

// next advances the SplitMix64 state and returns the next raw value.
func (r *RNG) next() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Uint64 returns the next pseudo-random 64-bit value.
func (r *RNG) Uint64() uint64 { return r.next() }

// Intn returns a pseudo-random int in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("textutil: Intn with non-positive n")
	}
	return int(r.next() % uint64(n))
}

// Float64 returns a pseudo-random float64 in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.next()>>11) / (1 << 53)
}

// Bool returns true with probability p (clamped to [0,1]).
func (r *RNG) Bool(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return r.Float64() < p
}

// Split derives an independent generator from the current one. The
// parent advances by one step, so repeated Split calls yield distinct
// children; each child's stream is uncorrelated with the parent's
// subsequent output for practical purposes.
func (r *RNG) Split() *RNG {
	return &RNG{state: r.next() ^ 0x5851f42d4c957f2d}
}

// Perm returns a pseudo-random permutation of [0, n).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Pick returns a uniformly chosen element of items. It panics on an
// empty slice, mirroring Intn.
func Pick[T any](r *RNG, items []T) T {
	return items[r.Intn(len(items))]
}

// Shuffle permutes items in place.
func Shuffle[T any](r *RNG, items []T) {
	for i := len(items) - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		items[i], items[j] = items[j], items[i]
	}
}
