// Package cfd implements conditional functional dependencies (CFDs),
// the constraint class the paper contrasts editing rules against
// (Example 1: ψ1: AC = 020 → city = Ldn, ψ2: AC = 131 → city = Edi).
//
// The package provides:
//
//   - the CFD model (embedded pattern tableau with constants and
//     wildcards) and a one-line DSL;
//   - violation detection over tuples and relations — CFDs "detect the
//     presence of errors" but cannot localize them;
//   - a heuristic cost-based repair in the style the paper's related
//     work uses (value modification minimizing edit-distance cost,
//     cf. Bohannon et al., SIGMOD 2005). This is the E4 baseline: it
//     resolves each violation by rewriting right-hand-side values,
//     which can overwrite correct data — exactly the Example 1 failure
//     mode certain fixes avoid;
//   - derivation of editing rules from CFDs (paper §2: rules can be
//     "derived from integrity constraints, e.g., cfds and matching
//     dependencies ... for which discovery algorithms are already in
//     place").
package cfd

import (
	"fmt"
	"sort"
	"strings"

	"cerfix/internal/pattern"
	"cerfix/internal/rule"
	"cerfix/internal/schema"
	"cerfix/internal/storage"
	"cerfix/internal/textutil"
	"cerfix/internal/value"
)

// Atom is one side element of a CFD embedding: an attribute with
// either a constant (Const != nil) or a wildcard.
type Atom struct {
	// Attr is the attribute name.
	Attr string
	// Const is the pattern constant; nil means wildcard ("_").
	Const *value.V
}

// IsConst reports whether the atom carries a constant.
func (a Atom) IsConst() bool { return a.Const != nil }

// String renders `attr = "c"` or `attr`.
func (a Atom) String() string {
	if a.IsConst() {
		return fmt.Sprintf("%s = %q", a.Attr, string(*a.Const))
	}
	return a.Attr
}

// ConstAtom builds a constant atom.
func ConstAtom(attr string, c value.V) Atom { return Atom{Attr: attr, Const: &c} }

// VarAtom builds a wildcard atom.
func VarAtom(attr string) Atom { return Atom{Attr: attr} }

// CFD is one conditional functional dependency (X → Y, tp) with a
// single pattern row (a multi-row tableau is expressed as several CFDs
// sharing the embedded FD, which is how discovery tools emit them).
type CFD struct {
	// ID names the dependency (e.g. "psi1").
	ID string
	// LHS is the X side with its pattern constants.
	LHS []Atom
	// RHS is the Y side with its pattern constants.
	RHS []Atom
}

// IsConstant reports whether every RHS atom carries a constant — a
// "constant CFD" that pins exact values (like ψ1/ψ2 of Example 1).
func (c *CFD) IsConstant() bool {
	for _, a := range c.RHS {
		if !a.IsConst() {
			return false
		}
	}
	return len(c.RHS) > 0
}

// LHSAttrs returns the X attribute names in order.
func (c *CFD) LHSAttrs() []string {
	out := make([]string, len(c.LHS))
	for i, a := range c.LHS {
		out[i] = a.Attr
	}
	return out
}

// RHSAttrs returns the Y attribute names in order.
func (c *CFD) RHSAttrs() []string {
	out := make([]string, len(c.RHS))
	for i, a := range c.RHS {
		out[i] = a.Attr
	}
	return out
}

// Validate checks attribute existence and shape.
func (c *CFD) Validate(sch *schema.Schema) error {
	if c.ID == "" {
		return fmt.Errorf("cfd: empty id")
	}
	if len(c.LHS) == 0 || len(c.RHS) == 0 {
		return fmt.Errorf("cfd %s: empty side", c.ID)
	}
	seen := map[string]bool{}
	for _, a := range append(append([]Atom{}, c.LHS...), c.RHS...) {
		if !sch.Has(a.Attr) {
			return fmt.Errorf("cfd %s: attribute %q not in schema %s", c.ID, a.Attr, sch.Name())
		}
	}
	for _, a := range c.RHS {
		if seen[a.Attr] {
			return fmt.Errorf("cfd %s: duplicate RHS attribute %q", c.ID, a.Attr)
		}
		seen[a.Attr] = true
		for _, l := range c.LHS {
			if l.Attr == a.Attr {
				return fmt.Errorf("cfd %s: attribute %q on both sides", c.ID, a.Attr)
			}
		}
	}
	return nil
}

// lhsMatches reports whether t satisfies the LHS pattern constants.
func (c *CFD) lhsMatches(t *schema.Tuple) bool {
	for _, a := range c.LHS {
		if a.IsConst() && t.Get(a.Attr) != *a.Const {
			return false
		}
	}
	return true
}

// String renders the CFD in DSL syntax.
func (c *CFD) String() string {
	l := make([]string, len(c.LHS))
	for i, a := range c.LHS {
		l[i] = a.String()
	}
	r := make([]string, len(c.RHS))
	for i, a := range c.RHS {
		r[i] = a.String()
	}
	return fmt.Sprintf("%s: %s -> %s", c.ID, strings.Join(l, ", "), strings.Join(r, ", "))
}

// Violation records one detected inconsistency.
type Violation struct {
	// CFDID names the violated dependency.
	CFDID string
	// Attr is the RHS attribute in disagreement.
	Attr string
	// TupleA is always set; TupleB is set for variable-CFD pair
	// violations (two tuples agreeing on X but differing on Y).
	TupleA, TupleB int64
	// Want is the expected value (pattern constant, or TupleA's value
	// for pair violations).
	Want value.V
	// Got is the offending value.
	Got value.V
}

// String renders the violation.
func (v Violation) String() string {
	if v.TupleB != 0 {
		return fmt.Sprintf("%s: tuples %d and %d agree on LHS but %s differs (%q vs %q)",
			v.CFDID, v.TupleA, v.TupleB, v.Attr, string(v.Want), string(v.Got))
	}
	return fmt.Sprintf("%s: tuple %d has %s=%q, pattern requires %q",
		v.CFDID, v.TupleA, v.Attr, string(v.Got), string(v.Want))
}

// CheckTuple returns the constant-CFD violations of a single tuple —
// the detection power Example 1 grants integrity constraints: presence
// of errors, not their location.
func CheckTuple(cfds []*CFD, t *schema.Tuple) []Violation {
	var out []Violation
	for _, c := range cfds {
		if !c.IsConstant() || !c.lhsMatches(t) {
			continue
		}
		for _, a := range c.RHS {
			if got := t.Get(a.Attr); got != *a.Const {
				out = append(out, Violation{
					CFDID: c.ID, Attr: a.Attr, TupleA: t.ID,
					Want: *a.Const, Got: got,
				})
			}
		}
	}
	return out
}

// CheckTable returns all violations over a table: constant-CFD row
// violations plus variable-CFD pair violations (first witness pair per
// (cfd, group, attr)).
func CheckTable(cfds []*CFD, tbl *storage.Table) []Violation {
	var out []Violation
	rows := tbl.All()
	for _, c := range cfds {
		if c.IsConstant() {
			for _, t := range rows {
				out = append(out, CheckTuple([]*CFD{c}, t)...)
			}
			continue
		}
		// Variable CFD: group matching tuples by X projection.
		groups := make(map[string]*schema.Tuple)
		flagged := make(map[string]bool)
		lhs := c.LHSAttrs()
		for _, t := range rows {
			if !c.lhsMatches(t) {
				continue
			}
			key := t.Project(lhs).Key()
			first, ok := groups[key]
			if !ok {
				groups[key] = t
				continue
			}
			for _, a := range c.RHS {
				if a.IsConst() {
					continue
				}
				fkey := key + "\x00" + a.Attr
				if flagged[fkey] {
					continue
				}
				if first.Get(a.Attr) != t.Get(a.Attr) {
					flagged[fkey] = true
					out = append(out, Violation{
						CFDID: c.ID, Attr: a.Attr,
						TupleA: first.ID, TupleB: t.ID,
						Want: first.Get(a.Attr), Got: t.Get(a.Attr),
					})
				}
			}
		}
	}
	return out
}

// DeriveRules converts CFDs into editing rules against a master
// relation under the same schema (paper §2). A CFD (X → A, tp) yields
// the eR "match X~X set A := A when <LHS constants>": when the input
// agrees with a master tuple on X (and X is validated), A is copied
// from master. RHS pattern constants are dropped — consistent master
// data already satisfies them — and recorded in the rule comment.
func DeriveRules(cfds []*CFD, sch *schema.Schema) ([]*rule.Rule, error) {
	var out []*rule.Rule
	for _, c := range cfds {
		if err := c.Validate(sch); err != nil {
			return nil, err
		}
		var conds []pattern.Condition
		var match []rule.Correspondence
		for _, a := range c.LHS {
			match = append(match, rule.Correspondence{Input: a.Attr, Master: a.Attr})
			if a.IsConst() {
				conds = append(conds, pattern.Eq(a.Attr, *a.Const))
			}
		}
		var set []rule.Correspondence
		comment := fmt.Sprintf("derived from cfd %s", c.ID)
		for _, a := range c.RHS {
			set = append(set, rule.Correspondence{Input: a.Attr, Master: a.Attr})
			if a.IsConst() {
				comment += fmt.Sprintf("; expects %s=%q", a.Attr, string(*a.Const))
			}
		}
		r := &rule.Rule{
			ID:      "er_" + c.ID,
			Match:   match,
			Set:     set,
			When:    pattern.NewPattern(conds...),
			Comment: comment,
		}
		out = append(out, r)
	}
	return out, nil
}

// Repairer is the heuristic cost-based repair baseline. It resolves
// violations by modifying right-hand-side values: constant CFDs force
// the pattern constant; variable CFDs align each X-group on the
// group's plurality value (ties by lower total edit-distance cost).
// It neither consults master data nor users — and therefore cannot
// tell which side of a violation is wrong.
type Repairer struct {
	cfds []*CFD
	// MaxPasses bounds the fixpoint iterations (default 5).
	MaxPasses int
}

// NewRepairer builds a baseline repairer.
func NewRepairer(cfds []*CFD) *Repairer {
	return &Repairer{cfds: cfds, MaxPasses: 5}
}

// RepairStats summarizes one repair run.
type RepairStats struct {
	// CellsChanged counts modified cells.
	CellsChanged int
	// Passes is the number of fixpoint passes run.
	Passes int
	// Remaining counts violations left after the final pass.
	Remaining int
}

// RepairTuple applies constant-CFD repairs to a single tuple (the
// point-of-entry analogue of the baseline): every violated constant
// pattern overwrites the RHS cell. Returns the repaired copy and the
// number of changed cells.
func (r *Repairer) RepairTuple(t *schema.Tuple) (*schema.Tuple, int) {
	out := t.Clone()
	changed := 0
	for pass := 0; pass < r.maxPasses(); pass++ {
		vs := CheckTuple(r.cfds, out)
		if len(vs) == 0 {
			break
		}
		for _, v := range vs {
			out.Set(v.Attr, v.Want)
			changed++
		}
	}
	return out, changed
}

func (r *Repairer) maxPasses() int {
	if r.MaxPasses > 0 {
		return r.MaxPasses
	}
	return 5
}

// RepairTable repairs a table in place: constant CFDs overwrite RHS
// cells; variable CFDs align each group on its plurality value.
func (r *Repairer) RepairTable(tbl *storage.Table) RepairStats {
	stats := RepairStats{}
	for pass := 1; pass <= r.maxPasses(); pass++ {
		stats.Passes = pass
		changed := 0
		// Constant CFDs.
		for _, t := range tbl.All() {
			fixed, n := r.repairConstantsOnce(t)
			if n > 0 {
				if err := tbl.Update(fixed); err == nil {
					changed += n
				}
			}
		}
		// Variable CFDs: plurality alignment per group.
		for _, c := range r.cfds {
			if c.IsConstant() {
				continue
			}
			changed += r.alignGroups(c, tbl)
		}
		stats.CellsChanged += changed
		if changed == 0 {
			break
		}
	}
	stats.Remaining = len(CheckTable(r.cfds, tbl))
	return stats
}

func (r *Repairer) repairConstantsOnce(t *schema.Tuple) (*schema.Tuple, int) {
	out := t.Clone()
	changed := 0
	for _, v := range CheckTuple(r.cfds, out) {
		out.Set(v.Attr, v.Want)
		changed++
	}
	return out, changed
}

// alignGroups makes every X-group agree on each variable RHS attribute
// by rewriting minority values to the plurality value (cost-based tie
// break: the value minimizing total edit distance wins).
func (r *Repairer) alignGroups(c *CFD, tbl *storage.Table) int {
	lhs := c.LHSAttrs()
	groups := make(map[string][]*schema.Tuple)
	var keys []string
	for _, t := range tbl.All() {
		if !c.lhsMatches(t) {
			continue
		}
		k := t.Project(lhs).Key()
		if _, ok := groups[k]; !ok {
			keys = append(keys, k)
		}
		groups[k] = append(groups[k], t)
	}
	sort.Strings(keys)
	changed := 0
	for _, k := range keys {
		group := groups[k]
		if len(group) < 2 {
			continue
		}
		for _, a := range c.RHS {
			if a.IsConst() {
				continue
			}
			target := pluralityValue(group, a.Attr)
			for _, t := range group {
				if t.Get(a.Attr) != target {
					t.Set(a.Attr, target)
					if err := tbl.Update(t); err == nil {
						changed++
					}
				}
			}
		}
	}
	return changed
}

// pluralityValue picks the most frequent value of attr in the group;
// ties are broken by the value with the smallest total edit distance
// to the others (then lexicographically, for determinism).
func pluralityValue(group []*schema.Tuple, attr string) value.V {
	counts := make(map[value.V]int)
	for _, t := range group {
		counts[t.Get(attr)]++
	}
	var best value.V
	bestCount, bestCost := -1, 0
	var cands []value.V
	for v := range counts {
		cands = append(cands, v)
	}
	sort.Slice(cands, func(i, j int) bool { return cands[i] < cands[j] })
	for _, v := range cands {
		cost := 0
		for w, n := range counts {
			cost += n * textutil.Levenshtein(string(v), string(w))
		}
		if counts[v] > bestCount || (counts[v] == bestCount && cost < bestCost) {
			best, bestCount, bestCost = v, counts[v], cost
		}
	}
	return best
}
