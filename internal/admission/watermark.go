package admission

// Watermark hysteresis: the two-level state machine behind
// memory-pressure shedding. It is deliberately a pure function over
// (current state, observed value) so the policy is trivially testable;
// the sampling loop and the shedding decisions live with their owners
// (internal/guard and internal/server).

// Pressure is the load level a watermarked signal is at.
type Pressure int

const (
	// PressureOK: below every watermark — admit everything.
	PressureOK Pressure = iota
	// PressureSoft: past the soft watermark — shed deferrable work
	// (job submits) with 429 + Retry-After.
	PressureSoft
	// PressureHard: past the hard watermark — degraded; shed
	// everything deferrable with 503 and say so on /status.
	PressureHard
)

func (p Pressure) String() string {
	switch p {
	case PressureSoft:
		return "soft"
	case PressureHard:
		return "hard"
	default:
		return "ok"
	}
}

// Watermarks is a two-level threshold with hysteresis. A state is
// entered when the value reaches its watermark but left only when the
// value falls below RecoverFrac of it, so a signal oscillating around
// a watermark cannot flap the state (and the log) at sample rate.
type Watermarks struct {
	// Soft and Hard are the thresholds, in the signal's units; 0
	// disables that level.
	Soft, Hard uint64
	// RecoverFrac is the fraction of a watermark the value must fall
	// below to leave its state (0 means the default 0.9).
	RecoverFrac float64
}

func (wm Watermarks) recoverBelow(mark uint64) uint64 {
	frac := wm.RecoverFrac
	if frac <= 0 || frac > 1 {
		frac = 0.9
	}
	return uint64(float64(mark) * frac)
}

// Next returns the state after observing v from state cur.
func (wm Watermarks) Next(cur Pressure, v uint64) Pressure {
	switch cur {
	case PressureHard:
		if v >= wm.recoverBelow(wm.Hard) {
			return PressureHard
		}
		if wm.Soft > 0 && v >= wm.Soft {
			return PressureSoft
		}
		return PressureOK
	case PressureSoft:
		if wm.Hard > 0 && v >= wm.Hard {
			return PressureHard
		}
		if wm.Soft > 0 && v >= wm.recoverBelow(wm.Soft) {
			return PressureSoft
		}
		return PressureOK
	default:
		if wm.Hard > 0 && v >= wm.Hard {
			return PressureHard
		}
		if wm.Soft > 0 && v >= wm.Soft {
			return PressureSoft
		}
		return PressureOK
	}
}
