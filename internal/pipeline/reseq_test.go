package pipeline

import (
	"context"
	"errors"
	"math/rand"
	"sync"
	"testing"

	"cerfix/internal/schema"
)

// This file attacks the resequencing ring directly: testWorkerHook
// lets tests dictate the exact order in which finished chunks reach
// the resequencer, turning "adversarial worker scheduling" from a
// matter of luck into a deterministic schedule. All tests here run
// under -race in CI.

// releaseController serializes chunk completion into an exact global
// order: a worker parks in the hook until every chunk ranked before
// its own has been released.
type releaseController struct {
	mu   sync.Mutex
	cond *sync.Cond
	rank map[int]int // chunk startSeq → global release rank
	next int
}

func newReleaseController(order []int, chunkSize int) *releaseController {
	rc := &releaseController{rank: make(map[int]int, len(order))}
	rc.cond = sync.NewCond(&rc.mu)
	for r, chunkIdx := range order {
		rc.rank[chunkIdx*chunkSize] = r
	}
	return rc
}

func (rc *releaseController) hook(startSeq int) {
	rc.mu.Lock()
	defer rc.mu.Unlock()
	r, ok := rc.rank[startSeq]
	if !ok {
		return // final partial chunk outside the planned order: pass through
	}
	for r != rc.next {
		rc.cond.Wait()
	}
	rc.next++
	rc.cond.Broadcast()
}

// adversarialOrders builds completion schedules that are maximally
// hostile yet admissible under the in-flight window: chunks may only
// be reordered within a window's worth (F = window/chunkSize chunks),
// because the reader cannot admit further until the oldest emits.
// Within each consecutive group of F chunks, any permutation is
// achievable with F workers.
func adversarialOrders(totalChunks, f int, rng *rand.Rand) [][]int {
	identity := make([]int, totalChunks)
	for i := range identity {
		identity[i] = i
	}
	reversed := make([]int, 0, totalChunks)
	rotated := make([]int, 0, totalChunks)
	shuffled := make([]int, 0, totalChunks)
	for g := 0; g < totalChunks; g += f {
		end := g + f
		if end > totalChunks {
			end = totalChunks
		}
		for i := end - 1; i >= g; i-- { // strict reverse within the window
			reversed = append(reversed, i)
		}
		for i := g + 1; i < end; i++ { // oldest chunk arrives last but one rotation
			rotated = append(rotated, i)
		}
		rotated = append(rotated, g)
		perm := rng.Perm(end - g)
		for _, p := range perm {
			shuffled = append(shuffled, g+p)
		}
	}
	return [][]int{identity, reversed, rotated, shuffled}
}

// TestResequencerAdversarialOrders drives every hostile completion
// schedule through several window geometries, comparing the recycled
// ring's output to the sequential chase tuple by tuple.
func TestResequencerAdversarialOrders(t *testing.T) {
	eng, dirty, seed := workloadEngine(t, 30, 240)
	rng := rand.New(rand.NewSource(17))

	// Sequential reference.
	want := make([]*schema.Tuple, len(dirty))
	for i, tu := range dirty {
		want[i] = eng.Chase(tu, seed).Tuple
	}

	configs := []struct{ window, chunkSize int }{
		{16, 4},  // F=4 chunks reorderable
		{24, 4},  // F=6, ring of 7
		{8, 8},   // window == chunkSize: F=1, degenerate ring of 2
		{12, 5},  // non-dividing window/chunk
		{40, 10}, // wide chunks
	}
	for _, cfg := range configs {
		f := cfg.window / cfg.chunkSize
		if f < 1 {
			f = 1
		}
		totalChunks := len(dirty) / cfg.chunkSize // planned orders cover full chunks only
		for _, order := range adversarialOrders(totalChunks, f, rng) {
			rc := newReleaseController(order, cfg.chunkSize)
			testWorkerHook = rc.hook
			sink := &SliceSink{}
			workers := f
			if workers < 2 {
				workers = 2
			}
			stats, err := Run(context.Background(), eng, seed, NewSliceSource(dirty), sink,
				&Options{Workers: workers, Window: cfg.window, ChunkSize: cfg.chunkSize})
			testWorkerHook = nil
			if err != nil {
				t.Fatalf("cfg %+v: %v", cfg, err)
			}
			if stats.Tuples != len(dirty) || len(sink.Results) != len(dirty) {
				t.Fatalf("cfg %+v: processed %d/%d results %d", cfg, stats.Tuples, len(dirty), len(sink.Results))
			}
			for i, r := range sink.Results {
				if r.Seq != i {
					t.Fatalf("cfg %+v: result %d has seq %d (ring broke input order)", cfg, i, r.Seq)
				}
				if !r.Fixed.Equal(want[i]) {
					t.Fatalf("cfg %+v: tuple %d fixed %v, want %v", cfg, i, r.Fixed, want[i])
				}
			}
		}
	}
}

// TestResequencerWindowEqualsChunk pins the clamped edge: a window no
// larger than one chunk (including the Window < ChunkSize clamp) must
// throttle to near-lockstep yet stay correct at full worker counts.
func TestResequencerWindowEqualsChunk(t *testing.T) {
	eng, dirty, seed := workloadEngine(t, 20, 203) // odd count → partial final chunk
	for _, opt := range []*Options{
		{Workers: 6, Window: 8, ChunkSize: 8},
		{Workers: 6, Window: 1, ChunkSize: 8}, // clamps to ChunkSize
		{Workers: 3, Window: 7, ChunkSize: 7},
	} {
		sink := &SliceSink{}
		stats, err := Run(context.Background(), eng, seed, NewSliceSource(dirty), sink, opt)
		if err != nil {
			t.Fatal(err)
		}
		if stats.Tuples != len(dirty) {
			t.Fatalf("opts %+v: %d of %d", opt, stats.Tuples, len(dirty))
		}
		for i, r := range sink.Results {
			if r.Seq != i {
				t.Fatalf("opts %+v: result %d has seq %d", opt, i, r.Seq)
			}
		}
	}
}

// TestResequencerCancelMidRing cancels while the ring is loaded with
// out-of-order completions and the emit frontier's own chunk is
// wedged in a worker: the run must unwind without deadlock, emit
// nothing out of order, and report ctx's error.
func TestResequencerCancelMidRing(t *testing.T) {
	eng, dirty, seed := workloadEngine(t, 20, 160)
	const (
		window    = 16
		chunkSize = 4
	)
	f := window / chunkSize

	var (
		mu       sync.Mutex
		cond     = sync.NewCond(&mu)
		gateOpen bool
		parked   int
	)
	// Chunk 0 parks until the gate opens; later chunks flow straight
	// into the resequencer's ring (they cannot emit: next == 0).
	testWorkerHook = func(startSeq int) {
		mu.Lock()
		defer mu.Unlock()
		if startSeq != 0 {
			parked++
			cond.Broadcast()
			return
		}
		for !gateOpen {
			cond.Wait()
		}
	}
	defer func() { testWorkerHook = nil }()

	ctx, cancel := context.WithCancel(context.Background())
	var seqs []int
	sink := SinkFunc(func(r *Result) error { seqs = append(seqs, r.Seq); return nil })
	done := make(chan struct{})
	var stats Stats
	var err error
	go func() {
		defer close(done)
		stats, err = Run(ctx, eng, seed, NewSliceSource(dirty), sink,
			&Options{Workers: f, Window: window, ChunkSize: chunkSize})
	}()

	// Wait until every other admissible chunk has been delivered — the
	// ring now holds F-1 pending entries ahead of the wedged frontier.
	mu.Lock()
	for parked < f-1 {
		cond.Wait()
	}
	mu.Unlock()

	cancel()
	// The wedged worker must be released for the run to unwind (as the
	// cancellation contract says: observed within one window). Whether
	// its chunk still lands before the abort is a scheduling race; the
	// ring may legally flush up to one window, never more, and never
	// out of order.
	mu.Lock()
	gateOpen = true
	cond.Broadcast()
	mu.Unlock()
	<-done

	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if stats.Tuples > window {
		t.Fatalf("emitted %d tuples after cancellation, want ≤ one window (%d)", stats.Tuples, window)
	}
	if stats.Tuples == len(dirty) {
		t.Fatalf("run completed despite cancellation")
	}
	for i, s := range seqs {
		if s != i {
			t.Fatalf("post-cancel flush broke order: position %d got seq %d", i, s)
		}
	}
}

// TestResequencerRandomGeometry is the randomized stress: many runs
// over random (workers, window, chunk) geometry with natural
// scheduling, asserting order and completeness each time.
func TestResequencerRandomGeometry(t *testing.T) {
	eng, dirty, seed := workloadEngine(t, 20, 150)
	rng := rand.New(rand.NewSource(99))
	for i := 0; i < 20; i++ {
		opt := &Options{
			Workers:   1 + rng.Intn(8),
			Window:    1 + rng.Intn(40),
			ChunkSize: 1 + rng.Intn(10),
		}
		sink := &SliceSink{}
		stats, err := Run(context.Background(), eng, seed, NewSliceSource(dirty), sink, opt)
		if err != nil {
			t.Fatalf("opts %+v: %v", opt, err)
		}
		if stats.Tuples != len(dirty) || len(sink.Results) != len(dirty) {
			t.Fatalf("opts %+v: %d/%d", opt, stats.Tuples, len(dirty))
		}
		for j, r := range sink.Results {
			if r.Seq != j {
				t.Fatalf("opts %+v: result %d has seq %d", opt, j, r.Seq)
			}
		}
	}
}
