package server

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"time"

	"cerfix"
	"cerfix/internal/jobs"
	"cerfix/internal/pipeline"
	"cerfix/internal/schema"
)

// This file adds the batch-fix endpoint: the demo's monitor "supports
// several interfaces to access data, which could be readily integrated
// with other database applications" (§3) — batch mode is the
// integration point for bulk pipelines, applying non-interactive
// certain-fix passes given a caller-asserted validated attribute list.
//
// The handler captures an O(1) copy-on-write engine snapshot — the
// server lock is held only for the pointer-sized capture, never
// across a clone of master data — then fixes through
// internal/pipeline's sharded worker pool, so large batches neither
// serialize behind each other nor block interactive sessions, and
// concurrent rule/master mutations cannot race the in-flight batch.

// batchRequest is the POST /api/fix payload.
type batchRequest struct {
	// Validated lists the attributes the caller asserts correct on
	// every tuple.
	Validated []string `json:"validated"`
	// Tuples are the input rows (attribute → value).
	Tuples []map[string]string `json:"tuples"`
}

// batchTupleResult is one tuple's outcome — the same record the async
// jobs subsystem writes to its results artifact, so a job's JSONL
// output is byte-identical per line to this endpoint's results array.
type batchTupleResult = jobs.TupleResult

// batchResponse is the endpoint's reply. The handler renders it
// incrementally with jobs.ResultEncoder rather than marshaling this
// struct (the pipeline recycles results out from under a retained
// slice); the type remains the authoritative wire shape, decoded by
// the API tests and pinned byte-for-byte against the encoder by the
// response regression test.
type batchResponse struct {
	Results []batchTupleResult `json:"results"`
	// FullyValidated counts tuples whose every attribute ended
	// validated.
	FullyValidated int `json:"fully_validated"`
	// CellsRewritten counts rule-made value changes.
	CellsRewritten int `json:"cells_rewritten"`
}

func (s *Server) handleBatchFix(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	var req batchRequest
	if err := decodeBody(r, &req); err != nil {
		writeDecodeErr(w, r, err)
		return
	}
	if len(req.Validated) == 0 {
		writeErr(w, r, http.StatusUnprocessableEntity, codeInvalidInput, fmt.Errorf("validated attribute list required"))
		return
	}
	if len(req.Tuples) == 0 {
		writeErr(w, r, http.StatusUnprocessableEntity, codeInvalidInput, fmt.Errorf("no tuples"))
		return
	}
	// Freeze a consistent view — an O(1) COW capture; the lock only
	// pins the engine pointer against rule-set swaps — then fix
	// outside it.
	s.mu.Lock()
	input := s.sys.InputSchema()
	for _, a := range req.Validated {
		if !input.Has(a) {
			s.mu.Unlock()
			writeErr(w, r, http.StatusUnprocessableEntity, codeInvalidInput, fmt.Errorf("unknown attribute %q", a))
			return
		}
	}
	eng := s.sys.SnapshotEngine()
	s.mu.Unlock()

	tuples := make([]*cerfix.Tuple, len(req.Tuples))
	for i, tm := range req.Tuples {
		tu, err := tupleFromMap(input, tm)
		if err != nil {
			writeErr(w, r, http.StatusUnprocessableEntity, codeInvalidInput, fmt.Errorf("tuple %d: %w", i, err))
			return
		}
		tuples[i] = tu
	}

	// The response is rendered incrementally per result through the
	// jobs ResultEncoder — byte-identical to writeJSON encoding a
	// batchResponse (the regression test pins this), but honoring the
	// pipeline's recycling contract: each result is serialized before
	// Write returns, so the run allocates O(window) plus the response
	// buffer instead of materializing a TupleResult per tuple.
	seed := schema.SetOfNames(input, req.Validated...)
	enc := jobs.NewResultEncoder(input)
	buf := append(make([]byte, 0, 64*len(tuples)), `{"results":[`...)
	first := true
	sink := pipeline.SinkFunc(func(res *pipeline.Result) error {
		if !first {
			buf = append(buf, ',')
		}
		first = false
		buf = enc.Append(buf, res)
		return nil
	})
	stats, err := pipeline.Run(r.Context(), eng, seed, pipeline.NewSliceSource(tuples), sink, nil)
	if err != nil {
		switch {
		case errors.Is(err, context.DeadlineExceeded):
			// The per-request deadline (-request-timeout) expired
			// mid-run and the pipeline drained cleanly.
			writeErr(w, r, http.StatusGatewayTimeout, codeDeadlineExceeded,
				fmt.Errorf("batch fix exceeded the %s request deadline; reduce the batch or submit an async job", s.limits.RequestTimeout))
		case errors.Is(err, context.Canceled):
			// The client went away mid-run: the pipeline aborted with
			// its context, the gate slot is released by withSyncGate's
			// defer, and there is nobody to answer — just tag the
			// access-log line with why.
			metaFrom(r).code = "client_disconnect"
		default:
			writeErr(w, r, http.StatusInternalServerError, codeInternal, err)
		}
		return
	}
	// Feed the shed path's Retry-After estimate with real service time.
	s.fixTime.Observe(time.Since(start))
	buf = append(buf, `],"fully_validated":`...)
	buf = strconv.AppendInt(buf, int64(stats.FullyValidated), 10)
	buf = append(buf, `,"cells_rewritten":`...)
	buf = strconv.AppendInt(buf, int64(stats.CellsRewritten), 10)
	buf = append(buf, '}', '\n') // json.Encoder's trailing newline
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(buf)
}
