package admission

import (
	"sync"
	"testing"
	"time"
)

func TestAdmissionLimiterRefillAndBurst(t *testing.T) {
	l := NewLimiter(2, 3) // 2 tokens/s, burst 3
	now := time.Unix(1000, 0)

	// The full burst is admitted back to back.
	for i := 0; i < 3; i++ {
		ok, _, _ := l.Allow("k", now)
		if !ok {
			t.Fatalf("burst request %d denied", i)
		}
	}
	// The 4th is denied with a sane Retry-After.
	ok, remaining, retry := l.Allow("k", now)
	if ok {
		t.Fatal("over-burst request admitted")
	}
	if remaining != 0 {
		t.Fatalf("remaining = %d, want 0", remaining)
	}
	if retry < time.Second || retry > 2*time.Second {
		t.Fatalf("retry = %v, want within [1s, 2s]", retry)
	}
	// Half a second refills one token at rate 2.
	ok, _, _ = l.Allow("k", now.Add(500*time.Millisecond))
	if !ok {
		t.Fatal("refilled token denied")
	}
	// Idle time refills to burst, never beyond.
	ok, remaining, _ = l.Allow("k", now.Add(time.Hour))
	if !ok || remaining != 2 {
		t.Fatalf("after idle: ok=%v remaining=%d, want ok remaining=2", ok, remaining)
	}
}

func TestAdmissionLimiterKeysIsolated(t *testing.T) {
	l := NewLimiter(1, 1)
	now := time.Unix(1000, 0)
	if ok, _, _ := l.Allow("a", now); !ok {
		t.Fatal("first a denied")
	}
	if ok, _, _ := l.Allow("a", now); ok {
		t.Fatal("second a admitted")
	}
	// A different key has its own bucket.
	if ok, _, _ := l.Allow("b", now); !ok {
		t.Fatal("first b denied")
	}
	if l.Keys() != 2 {
		t.Fatalf("keys = %d, want 2", l.Keys())
	}
}

func TestAdmissionLimiterConcurrentTotal(t *testing.T) {
	// Under concurrency, admissions for one key never exceed the
	// bucket's capacity at a frozen clock.
	l := NewLimiter(1, 10)
	now := time.Unix(1000, 0)
	var wg sync.WaitGroup
	admitted := make(chan struct{}, 64)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 8; i++ {
				if ok, _, _ := l.Allow("k", now); ok {
					admitted <- struct{}{}
				}
			}
		}()
	}
	wg.Wait()
	close(admitted)
	n := 0
	for range admitted {
		n++
	}
	if n != 10 {
		t.Fatalf("admitted %d, want exactly burst=10", n)
	}
}

func TestAdmissionGate(t *testing.T) {
	g := NewGate(2)
	if !g.TryAcquire() || !g.TryAcquire() {
		t.Fatal("gate denied within capacity")
	}
	if g.TryAcquire() {
		t.Fatal("gate admitted past capacity")
	}
	if g.InFlight() != 2 || g.Capacity() != 2 {
		t.Fatalf("inflight=%d cap=%d", g.InFlight(), g.Capacity())
	}
	g.Release()
	if !g.TryAcquire() {
		t.Fatal("released slot not reusable")
	}
}

func TestAdmissionGateConcurrentCap(t *testing.T) {
	g := NewGate(3)
	var wg sync.WaitGroup
	var mu sync.Mutex
	peak, cur := 0, 0
	for i := 0; i < 32; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 50; j++ {
				if !g.TryAcquire() {
					continue
				}
				mu.Lock()
				cur++
				if cur > peak {
					peak = cur
				}
				mu.Unlock()
				mu.Lock()
				cur--
				mu.Unlock()
				g.Release()
			}
		}()
	}
	wg.Wait()
	if peak > 3 {
		t.Fatalf("peak in-flight %d exceeds capacity 3", peak)
	}
	if g.InFlight() != 0 {
		t.Fatalf("leaked slots: %d", g.InFlight())
	}
}

func TestAdmissionEWMA(t *testing.T) {
	var e EWMA
	if e.Value() != 0 {
		t.Fatal("fresh EWMA non-zero")
	}
	e.Observe(100 * time.Millisecond)
	if e.Value() != 100*time.Millisecond {
		t.Fatalf("seed = %v", e.Value())
	}
	e.Observe(200 * time.Millisecond)
	// 0.2*200ms + 0.8*100ms = 120ms
	if got := e.Value(); got != 120*time.Millisecond {
		t.Fatalf("blend = %v, want 120ms", got)
	}
	if e.Count() != 2 {
		t.Fatalf("count = %d", e.Count())
	}
}

func TestAdmissionRetryAfter(t *testing.T) {
	cases := []struct {
		pending, lanes int
		avg            time.Duration
		want           time.Duration
	}{
		{0, 1, 0, time.Second},                           // no info: 1s floor
		{1, 4, 100 * time.Millisecond, time.Second},      // sub-second rounds up
		{8, 2, time.Second, 4 * time.Second},             // depth/lanes scaling
		{3, 1, 2500 * time.Millisecond, 8 * time.Second}, // ceil to whole seconds
		{5, 0, time.Second, 5 * time.Second},             // lanes floor of 1
	}
	for _, c := range cases {
		if got := RetryAfter(c.pending, c.lanes, c.avg); got != c.want {
			t.Fatalf("RetryAfter(%d, %d, %v) = %v, want %v", c.pending, c.lanes, c.avg, got, c.want)
		}
	}
}

func TestAdmissionLimiterPrune(t *testing.T) {
	l := NewLimiter(1, 1)
	now := time.Unix(1000, 0)
	// Spend a batch of keys an hour ago and one key just now.
	for i := 0; i < 100; i++ {
		l.Allow(string(rune('a'+i%26))+string(rune('0'+i/26)), now.Add(-time.Hour))
	}
	l.Allow("hot", now)
	// The hour-old buckets have lazily refilled to burst — prune
	// treats them as fresh and drops them; "hot" just spent its token
	// and must keep its denial state.
	l.mu.Lock()
	l.pruneLocked(now)
	l.mu.Unlock()
	if got := l.Keys(); got != 1 {
		t.Fatalf("keys after prune = %d, want 1", got)
	}
	if ok, _, _ := l.Allow("hot", now); ok {
		t.Fatal("hot bucket lost its spent state")
	}
}
