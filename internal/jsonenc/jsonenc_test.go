package jsonenc

import (
	"encoding/json"
	"math/rand"
	"strings"
	"testing"
)

// marshalString is the encoding/json reference for one string.
func marshalString(t *testing.T, s string) string {
	t.Helper()
	data, err := json.Marshal(s)
	if err != nil {
		t.Fatalf("json.Marshal(%q): %v", s, err)
	}
	return string(data)
}

// TestAppendStringEdgeCases pins AppendString against encoding/json on
// the hand-picked escaping corners: quotes, backslashes, every control
// character, the HTML set, multi-byte UTF-8, invalid UTF-8 and the
// JSONP separators.
func TestAppendStringEdgeCases(t *testing.T) {
	cases := []string{
		"",
		"plain ascii",
		`quote " and backslash \`,
		"tab\tnewline\ncarriage\rbackspace\bformfeed\f",
		"<script>alert('x')&amp;</script>",
		"naïve café — ünïcödé 漢字 🚀",
		"line\u2028and\u2029separators",
		"\x00\x01\x02\x1e\x1f control runs",
		"\x7f del is unescaped",
		"invalid \xff\xfe utf8 \xc3\x28 seq",
		"truncated multibyte \xe2\x82",
		"1.5e-10", "-0.0", "3.141592653589793", "NaN", "1e309",
		"07", "0x1f", "998244353",
		strings.Repeat("é", 100) + "\"" + strings.Repeat("\x01", 3),
	}
	for _, s := range cases {
		want := marshalString(t, s)
		got := string(AppendString(nil, s))
		if got != want {
			t.Errorf("AppendString(%q)\n got %s\nwant %s", s, got, want)
		}
	}
}

// TestAppendStringQuickCheck fuzzes random byte strings — biased
// toward the troublesome ranges — against encoding/json.
func TestAppendStringQuickCheck(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	alphabets := [][]byte{
		[]byte("abcdefghijklmnopqrstuvwxyz0123456789.-+eE"),
		[]byte("\"\\<>&\x00\x01\x1f\x20\x7fabc"),
		[]byte("\xc3\xa9\xe2\x82\xac\xf0\x9f\x9a\x80\xff\xfeab"), // UTF-8 fragments + junk
	}
	for i := 0; i < 3000; i++ {
		alpha := alphabets[rng.Intn(len(alphabets))]
		n := rng.Intn(24)
		b := make([]byte, n)
		for j := range b {
			b[j] = alpha[rng.Intn(len(alpha))]
		}
		s := string(b)
		want := marshalString(t, s)
		got := string(AppendString(nil, s))
		if got != want {
			t.Fatalf("iteration %d: AppendString(%q)\n got %s\nwant %s", i, s, got, want)
		}
	}
}

// TestAppendStringReusesBuffer proves appends extend dst in place.
func TestAppendStringReusesBuffer(t *testing.T) {
	buf := make([]byte, 0, 256)
	buf = append(buf, "x:"...)
	buf = AppendString(buf, "value")
	if string(buf) != `x:"value"` {
		t.Fatalf("buf = %s", buf)
	}
	if cap(buf) != 256 {
		t.Fatalf("buffer reallocated: cap %d", cap(buf))
	}
}

// TestKeyOrder matches encoding/json's sorted map-key order.
func TestKeyOrder(t *testing.T) {
	names := []string{"zip", "AC", "str", "FN", "item", "LN"}
	m := make(map[string]string, len(names))
	for _, n := range names {
		m[n] = "v"
	}
	data, err := json.Marshal(m)
	if err != nil {
		t.Fatal(err)
	}
	var ordered []string
	for _, i := range KeyOrder(names) {
		ordered = append(ordered, names[i])
	}
	var got []byte
	got = append(got, '{')
	for i, n := range ordered {
		if i > 0 {
			got = append(got, ',')
		}
		got = AppendString(got, n)
		got = append(got, ':')
		got = AppendString(got, "v")
	}
	got = append(got, '}')
	if string(got) != string(data) {
		t.Fatalf("key order diverges from encoding/json:\n got %s\nwant %s", got, data)
	}
}

func TestAppendBool(t *testing.T) {
	if s := string(AppendBool(nil, true)); s != "true" {
		t.Fatalf("true -> %s", s)
	}
	if s := string(AppendBool(nil, false)); s != "false" {
		t.Fatalf("false -> %s", s)
	}
}
