package pipeline

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"testing"
	"time"

	"cerfix/internal/guard"
)

// A panic inside a worker's chase — here injected through the chaos
// seam — must surface as a typed *guard.PanicError from Run, with the
// stack attached, and must not deadlock or leak the other stages.
func TestWorkerPanicBecomesTypedError(t *testing.T) {
	guard.SetChaos(true)
	defer guard.SetChaos(false)

	eng, tuples, validated := workloadEngine(t, 40, 40)
	// Poison one tuple mid-stream.
	tuples[20].Vals[0] = guard.ChaosPanicValue

	before := runtime.NumGoroutine()
	for round := 0; round < 3; round++ {
		_, err := Run(context.Background(), eng, validated, NewSliceSource(tuples), Discard, &Options{Workers: 4})
		var pe *guard.PanicError
		if !errors.As(err, &pe) {
			t.Fatalf("round %d: err = %v, want *guard.PanicError", round, err)
		}
		if pe.Where != "pipeline worker" || len(pe.Stack) == 0 {
			t.Fatalf("round %d: PanicError = %+v", round, pe)
		}
	}
	// No stage goroutines may outlive their runs.
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > before+2 && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if after := runtime.NumGoroutine(); after > before+2 {
		t.Fatalf("goroutines leaked across panicked runs: before %d, after %d", before, after)
	}
}

// A panic in the sink (which runs on the caller's goroutine) must
// still unblock every stage before propagating — the caller's recover
// story is its own, but the pipeline may not leak goroutines under it.
func TestSinkPanicReleasesPipeline(t *testing.T) {
	eng, tuples, validated := workloadEngine(t, 40, 64)
	before := runtime.NumGoroutine()
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("sink panic did not propagate")
			}
		}()
		sink := SinkFunc(func(r *Result) error {
			if r.Seq == 10 {
				panic("sink exploded")
			}
			return nil
		})
		_, _ = Run(context.Background(), eng, validated, NewSliceSource(tuples), sink, &Options{Workers: 4})
	}()
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > before+2 && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if after := runtime.NumGoroutine(); after > before+2 {
		t.Fatalf("goroutines leaked after sink panic: before %d, after %d", before, after)
	}
}

// A chaos stall parks a worker until the run's context is cancelled;
// cancellation must then drain the run and report the context cause —
// the exact sequence the jobs watchdog relies on.
func TestChaosStallReleasedByCancel(t *testing.T) {
	guard.SetChaos(true)
	defer guard.SetChaos(false)
	guard.ArmStalls(1)

	eng, tuples, validated := workloadEngine(t, 40, 32)
	tuples[7].Vals[0] = guard.ChaosStallValue

	ctx, cancel := context.WithCancelCause(context.Background())
	go func() {
		time.Sleep(50 * time.Millisecond)
		cancel(fmt.Errorf("%w: test fired", guard.ErrStalled))
	}()
	doneCh := make(chan error, 1)
	go func() {
		_, err := Run(ctx, eng, validated, NewSliceSource(tuples), Discard, &Options{Workers: 2})
		doneCh <- err
	}()
	select {
	case err := <-doneCh:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("err = %v, want context.Canceled", err)
		}
		if !errors.Is(context.Cause(ctx), guard.ErrStalled) {
			t.Fatalf("cause = %v, want ErrStalled", context.Cause(ctx))
		}
	case <-time.After(10 * time.Second):
		t.Fatal("stalled run never drained after cancellation")
	}
}
