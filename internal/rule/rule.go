// Package rule implements editing rules (eRs), the central formalism of
// CerFix. An editing rule
//
//	φ: ((X, Xm) → (B, Bm), tp[Xp])
//
// says: for an input tuple t and a master tuple s, if t[X] = s[Xm]
// (attribute-wise along the correspondence), t matches the pattern tp,
// and t[X] and t[Xp] are validated (assured correct), then t[B] := s[Bm]
// is a certain fix, and B becomes validated.
//
// The package defines the rule structure, well-formedness validation
// against the input/master schema pair, a human-readable text DSL with
// parser and printer, and rule sets with stable ordering.
package rule

import (
	"fmt"
	"sort"
	"strings"

	"cerfix/internal/pattern"
	"cerfix/internal/schema"
)

// Correspondence pairs an input-schema attribute with a master-schema
// attribute (one element of X ↔ Xm or B ↔ Bm).
type Correspondence struct {
	// Input is the attribute of the input (dirty) relation.
	Input string
	// Master is the corresponding attribute of the master relation.
	Master string
}

// String renders "input~master".
func (c Correspondence) String() string { return c.Input + "~" + c.Master }

// Rule is one editing rule.
type Rule struct {
	// ID is the rule's unique name, e.g. "phi1".
	ID string
	// Match is the X ↔ Xm correspondence list: the join condition
	// between input tuple and master tuple.
	Match []Correspondence
	// Set is the B ↔ Bm correspondence list: the attributes the rule
	// fixes and where their values come from. The paper's rules carry a
	// single (B, Bm); we allow a list, which is equivalent to a group
	// of single-target rules sharing a premise.
	Set []Correspondence
	// When is the pattern tuple tp over input attributes Xp; the empty
	// pattern (no conditions) is the paper's tp = ().
	When pattern.Pattern
	// Comment is optional free text shown by the rule manager.
	Comment string
}

// MatchInputAttrs returns the input-side attributes of X in rule order.
func (r *Rule) MatchInputAttrs() []string {
	out := make([]string, len(r.Match))
	for i, c := range r.Match {
		out[i] = c.Input
	}
	return out
}

// MatchMasterAttrs returns the master-side attributes Xm in rule order.
func (r *Rule) MatchMasterAttrs() []string {
	out := make([]string, len(r.Match))
	for i, c := range r.Match {
		out[i] = c.Master
	}
	return out
}

// SetInputAttrs returns the fixed input attributes B in rule order.
func (r *Rule) SetInputAttrs() []string {
	out := make([]string, len(r.Set))
	for i, c := range r.Set {
		out[i] = c.Input
	}
	return out
}

// SetMasterAttrs returns the master source attributes Bm in rule order.
func (r *Rule) SetMasterAttrs() []string {
	out := make([]string, len(r.Set))
	for i, c := range r.Set {
		out[i] = c.Master
	}
	return out
}

// PremiseAttrs returns the set X ∪ Xp of input attributes that must be
// validated before the rule may fire (resolved against sch). The
// certain-fix semantics requires the pattern scope validated too:
// firing a rule off an unvalidated (possibly wrong) pattern attribute
// could not guarantee correctness.
func (r *Rule) PremiseAttrs(sch *schema.Schema) schema.AttrSet {
	s := schema.SetOfNames(sch, r.MatchInputAttrs()...)
	return s.Union(r.When.AttrSet(sch))
}

// TargetAttrs returns the set B resolved against sch.
func (r *Rule) TargetAttrs(sch *schema.Schema) schema.AttrSet {
	return schema.SetOfNames(sch, r.SetInputAttrs()...)
}

// Validate checks the rule is well formed w.r.t. the input and master
// schemas: non-empty match/set lists, all attributes exist on their
// side, the pattern scope is input-side, no target attribute appears in
// its own premise-match list (a rule may not overwrite its own join
// key), and no duplicate targets.
func (r *Rule) Validate(input, master *schema.Schema) error {
	if r.ID == "" {
		return fmt.Errorf("rule: empty id")
	}
	if len(r.Match) == 0 {
		return fmt.Errorf("rule %s: empty match list", r.ID)
	}
	if len(r.Set) == 0 {
		return fmt.Errorf("rule %s: empty set list", r.ID)
	}
	for _, c := range r.Match {
		if !input.Has(c.Input) {
			return fmt.Errorf("rule %s: match attribute %q not in input schema %s", r.ID, c.Input, input.Name())
		}
		if !master.Has(c.Master) {
			return fmt.Errorf("rule %s: match attribute %q not in master schema %s", r.ID, c.Master, master.Name())
		}
	}
	seenTarget := make(map[string]bool)
	for _, c := range r.Set {
		if !input.Has(c.Input) {
			return fmt.Errorf("rule %s: set attribute %q not in input schema %s", r.ID, c.Input, input.Name())
		}
		if !master.Has(c.Master) {
			return fmt.Errorf("rule %s: set attribute %q not in master schema %s", r.ID, c.Master, master.Name())
		}
		if seenTarget[c.Input] {
			return fmt.Errorf("rule %s: duplicate set target %q", r.ID, c.Input)
		}
		seenTarget[c.Input] = true
		for _, m := range r.Match {
			if m.Input == c.Input {
				return fmt.Errorf("rule %s: attribute %q is both matched and set", r.ID, c.Input)
			}
		}
	}
	if err := r.When.Validate(input); err != nil {
		return fmt.Errorf("rule %s: %w", r.ID, err)
	}
	return nil
}

// String renders the rule in DSL syntax (parseable by Parse).
func (r *Rule) String() string {
	var b strings.Builder
	b.WriteString(r.ID)
	b.WriteString(": match ")
	b.WriteString(joinCorrespondences(r.Match))
	b.WriteString(" set ")
	b.WriteString(joinAssignments(r.Set))
	if !r.When.IsEmpty() {
		b.WriteString(" when ")
		b.WriteString(r.When.String())
	}
	return b.String()
}

func joinCorrespondences(cs []Correspondence) string {
	parts := make([]string, len(cs))
	for i, c := range cs {
		parts[i] = c.String()
	}
	return strings.Join(parts, ", ")
}

func joinAssignments(cs []Correspondence) string {
	parts := make([]string, len(cs))
	for i, c := range cs {
		parts[i] = c.Input + " := " + c.Master
	}
	return strings.Join(parts, ", ")
}

// Clone returns a deep copy of the rule.
func (r *Rule) Clone() *Rule {
	cp := &Rule{
		ID:      r.ID,
		Match:   append([]Correspondence(nil), r.Match...),
		Set:     append([]Correspondence(nil), r.Set...),
		Comment: r.Comment,
	}
	cp.When = pattern.NewPattern(r.When.Conds...)
	return cp
}

// Set (of rules) ---------------------------------------------------------

// Set is an ordered collection of rules with unique IDs. Order matters:
// the chase scans rules in set order, making runs deterministic.
type Set struct {
	rules []*Rule
	byID  map[string]*Rule
}

// NewSet builds a set from rules, rejecting duplicate IDs.
func NewSet(rules ...*Rule) (*Set, error) {
	s := &Set{byID: make(map[string]*Rule)}
	for _, r := range rules {
		if err := s.Add(r); err != nil {
			return nil, err
		}
	}
	return s, nil
}

// MustSet is NewSet but panics on error.
func MustSet(rules ...*Rule) *Set {
	s, err := NewSet(rules...)
	if err != nil {
		panic(err)
	}
	return s
}

// Add appends a rule; duplicate IDs are an error.
func (s *Set) Add(r *Rule) error {
	if r == nil {
		return fmt.Errorf("rule: nil rule")
	}
	if _, dup := s.byID[r.ID]; dup {
		return fmt.Errorf("rule: duplicate id %q", r.ID)
	}
	s.rules = append(s.rules, r)
	s.byID[r.ID] = r
	return nil
}

// Remove deletes the rule with the given ID, reporting whether it
// existed.
func (s *Set) Remove(id string) bool {
	if _, ok := s.byID[id]; !ok {
		return false
	}
	delete(s.byID, id)
	for i, r := range s.rules {
		if r.ID == id {
			s.rules = append(s.rules[:i], s.rules[i+1:]...)
			break
		}
	}
	return true
}

// Get returns the rule with the given ID.
func (s *Set) Get(id string) (*Rule, bool) {
	r, ok := s.byID[id]
	return r, ok
}

// Len returns the number of rules.
func (s *Set) Len() int { return len(s.rules) }

// Rules returns the rules in set order (shared slice copy).
func (s *Set) Rules() []*Rule {
	out := make([]*Rule, len(s.rules))
	copy(out, s.rules)
	return out
}

// IDs returns rule IDs in set order.
func (s *Set) IDs() []string {
	out := make([]string, len(s.rules))
	for i, r := range s.rules {
		out[i] = r.ID
	}
	return out
}

// Validate checks every rule against the schema pair.
func (s *Set) Validate(input, master *schema.Schema) error {
	for _, r := range s.rules {
		if err := r.Validate(input, master); err != nil {
			return err
		}
	}
	return nil
}

// Clone deep-copies the set.
func (s *Set) Clone() *Set {
	out := &Set{byID: make(map[string]*Rule, len(s.rules))}
	for _, r := range s.rules {
		cp := r.Clone()
		out.rules = append(out.rules, cp)
		out.byID[cp.ID] = cp
	}
	return out
}

// String renders the set as one rule per line, in set order.
func (s *Set) String() string {
	var b strings.Builder
	for _, r := range s.rules {
		b.WriteString(r.String())
		b.WriteString("\n")
	}
	return b.String()
}

// DistinctPatterns returns the distinct non-empty patterns appearing on
// rules, in a canonical (string-sorted) order. The region finder
// enumerates pattern cells over these.
func (s *Set) DistinctPatterns() []pattern.Pattern {
	seen := make(map[string]pattern.Pattern)
	for _, r := range s.rules {
		if !r.When.IsEmpty() {
			seen[r.When.String()] = r.When
		}
	}
	keys := make([]string, 0, len(seen))
	for k := range seen {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]pattern.Pattern, len(keys))
	for i, k := range keys {
		out[i] = seen[k]
	}
	return out
}
