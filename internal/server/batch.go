package server

import (
	"fmt"
	"net/http"

	"cerfix"
	"cerfix/internal/jobs"
	"cerfix/internal/pipeline"
	"cerfix/internal/schema"
)

// This file adds the batch-fix endpoint: the demo's monitor "supports
// several interfaces to access data, which could be readily integrated
// with other database applications" (§3) — batch mode is the
// integration point for bulk pipelines, applying non-interactive
// certain-fix passes given a caller-asserted validated attribute list.
//
// The handler captures an O(1) copy-on-write engine snapshot — the
// server lock is held only for the pointer-sized capture, never
// across a clone of master data — then fixes through
// internal/pipeline's sharded worker pool, so large batches neither
// serialize behind each other nor block interactive sessions, and
// concurrent rule/master mutations cannot race the in-flight batch.

// batchRequest is the POST /api/fix payload.
type batchRequest struct {
	// Validated lists the attributes the caller asserts correct on
	// every tuple.
	Validated []string `json:"validated"`
	// Tuples are the input rows (attribute → value).
	Tuples []map[string]string `json:"tuples"`
}

// batchTupleResult is one tuple's outcome — the same record the async
// jobs subsystem writes to its results artifact, so a job's JSONL
// output is byte-identical per line to this endpoint's results array.
type batchTupleResult = jobs.TupleResult

// batchResponse is the endpoint's reply.
type batchResponse struct {
	Results []batchTupleResult `json:"results"`
	// FullyValidated counts tuples whose every attribute ended
	// validated.
	FullyValidated int `json:"fully_validated"`
	// CellsRewritten counts rule-made value changes.
	CellsRewritten int `json:"cells_rewritten"`
}

func (s *Server) handleBatchFix(w http.ResponseWriter, r *http.Request) {
	var req batchRequest
	if err := decodeBody(r, &req); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	if len(req.Validated) == 0 {
		writeError(w, http.StatusUnprocessableEntity, fmt.Errorf("validated attribute list required"))
		return
	}
	if len(req.Tuples) == 0 {
		writeError(w, http.StatusUnprocessableEntity, fmt.Errorf("no tuples"))
		return
	}
	// Freeze a consistent view — an O(1) COW capture; the lock only
	// pins the engine pointer against rule-set swaps — then fix
	// outside it.
	s.mu.Lock()
	input := s.sys.InputSchema()
	for _, a := range req.Validated {
		if !input.Has(a) {
			s.mu.Unlock()
			writeError(w, http.StatusUnprocessableEntity, fmt.Errorf("unknown attribute %q", a))
			return
		}
	}
	eng := s.sys.SnapshotEngine()
	s.mu.Unlock()

	tuples := make([]*cerfix.Tuple, len(req.Tuples))
	for i, tm := range req.Tuples {
		tu, err := tupleFromMap(input, tm)
		if err != nil {
			writeError(w, http.StatusUnprocessableEntity, fmt.Errorf("tuple %d: %w", i, err))
			return
		}
		tuples[i] = tu
	}

	seed := schema.SetOfNames(input, req.Validated...)
	resp := batchResponse{Results: make([]batchTupleResult, 0, len(tuples))}
	sink := pipeline.SinkFunc(func(res *pipeline.Result) error {
		resp.Results = append(resp.Results, jobs.NewTupleResult(input, res))
		return nil
	})
	stats, err := pipeline.Run(r.Context(), eng, seed, pipeline.NewSliceSource(tuples), sink, nil)
	if err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	resp.FullyValidated = stats.FullyValidated
	resp.CellsRewritten = stats.CellsRewritten
	writeJSON(w, http.StatusOK, resp)
}
