package textutil

import (
	"fmt"
	"strings"
)

// TextTable accumulates rows and renders them as an aligned plain-text
// table. The benchmark harness uses it to print the same row/series
// layout the paper's figures report, so "paper shape vs measured shape"
// can be eyeballed from terminal output and pasted into EXPERIMENTS.md.
type TextTable struct {
	header []string
	rows   [][]string
}

// NewTextTable creates a table with the given column headers.
func NewTextTable(header ...string) *TextTable {
	return &TextTable{header: header}
}

// AddRow appends a row; cells beyond the header width are dropped and
// missing cells render empty.
func (t *TextTable) AddRow(cells ...string) {
	row := make([]string, len(t.header))
	for i := range row {
		if i < len(cells) {
			row[i] = cells[i]
		}
	}
	t.rows = append(t.rows, row)
}

// AddRowf formats each argument with %v and appends the row.
func (t *TextTable) AddRowf(cells ...any) {
	s := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			s[i] = fmt.Sprintf("%.3f", v)
		default:
			s[i] = fmt.Sprintf("%v", c)
		}
	}
	t.AddRow(s...)
}

// String renders the table with column alignment and a separator line.
func (t *TextTable) String() string {
	widths := make([]int, len(t.header))
	for i, h := range t.header {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, c := range row {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(PadRight(c, widths[i]))
		}
		b.WriteString("\n")
	}
	writeRow(t.header)
	for i, w := range widths {
		if i > 0 {
			b.WriteString("  ")
		}
		b.WriteString(strings.Repeat("-", w))
	}
	b.WriteString("\n")
	for _, row := range t.rows {
		writeRow(row)
	}
	return b.String()
}
