package main

import "testing"

// The experiment printers must run clean end to end at small scale
// (the heavy lifting is tested in internal/experiments; this guards
// the table-formatting layer).
func TestPrinters(t *testing.T) {
	if err := runE1(); err != nil {
		t.Fatal(err)
	}
	if err := runE2(); err != nil {
		t.Fatal(err)
	}
	if err := runE3(20, 30, 0.3, 1); err != nil {
		t.Fatal(err)
	}
	if err := runE4(15, 20, 1); err != nil {
		t.Fatal(err)
	}
	if err := runE6(15, 20, 1); err != nil {
		t.Fatal(err)
	}
	if err := runE7(1); err != nil {
		t.Fatal(err)
	}
	// e11 at toy scale: also exercises its byte-parity gate against
	// the sequential baseline (no JSON artifact).
	if err := runE11("1,2", 20, 200, 1, ""); err != nil {
		t.Fatal(err)
	}
}
