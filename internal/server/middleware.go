package server

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"fmt"
	"log"
	"net"
	"net/http"
	"runtime/debug"
	"strconv"
	"time"

	"cerfix/internal/admission"
)

// The middleware chain wraps the whole route table — outermost first:
//
//	request-ID injection → access logging → panic recovery →
//	per-key rate limiting → body cap → routes
//
// so every response (including sheds and panics) carries a request ID,
// appears in the access log with its status, duration and shed
// reason, and uses the typed error envelope. Per-request deadlines
// (withDeadline) are applied per route, not here, because streaming
// routes are exempt.

// chain assembles the middleware stack around the route mux.
func (s *Server) chain(next http.Handler) http.Handler {
	return s.requestIDMW(s.accessLogMW(s.recoverMW(s.rateLimitMW(s.bodyLimitMW(next)))))
}

// statusRecorder captures the response status and size for the access
// log, and whether the header was committed (the panic handler must
// not write a second status line into a half-sent response).
type statusRecorder struct {
	http.ResponseWriter
	status int
	bytes  int64
}

func (w *statusRecorder) WriteHeader(status int) {
	if w.status == 0 {
		w.status = status
	}
	w.ResponseWriter.WriteHeader(status)
}

func (w *statusRecorder) Write(p []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	n, err := w.ResponseWriter.Write(p)
	w.bytes += int64(n)
	return n, err
}

// requestIDMW assigns each request an ID — honoring a well-formed
// inbound X-Request-Id so callers can stitch distributed traces —
// and echoes it in the response header and every error envelope.
func (s *Server) requestIDMW(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		id := r.Header.Get("X-Request-Id")
		if !validRequestID(id) {
			id = fmt.Sprintf("%s-%06d", s.idPrefix, s.reqSeq.Add(1))
		}
		m := &reqMeta{id: id}
		w.Header().Set("X-Request-Id", id)
		next.ServeHTTP(w, withMeta(r, m))
	})
}

// validRequestID accepts 1–64 characters of [A-Za-z0-9._-]; anything
// else (including header injection attempts) gets a server-assigned
// ID instead.
func validRequestID(id string) bool {
	if len(id) == 0 || len(id) > 64 {
		return false
	}
	for i := 0; i < len(id); i++ {
		c := id[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9',
			c == '-', c == '_', c == '.':
		default:
			return false
		}
	}
	return true
}

// newIDPrefix seeds the per-process request-ID prefix.
func newIDPrefix() string {
	var b [4]byte
	if _, err := rand.Read(b[:]); err != nil {
		return "r0"
	}
	return hex.EncodeToString(b[:])
}

// accessLogMW emits one structured line per request: method, path,
// status, bytes, duration, request ID and — when the response was an
// error — its machine-readable code (the shed-reason column for
// 429s). Logging is off until SetAccessLog installs a logger.
func (s *Server) accessLogMW(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		rec := &statusRecorder{ResponseWriter: w}
		if s.accessLog == nil {
			next.ServeHTTP(rec, r)
			return
		}
		start := time.Now()
		defer func() {
			m := metaFrom(r)
			line := fmt.Sprintf("access method=%s path=%s status=%d bytes=%d dur=%s req=%s",
				r.Method, r.URL.Path, rec.status, rec.bytes, time.Since(start).Round(time.Microsecond), m.id)
			if m.code != "" {
				line += " code=" + m.code
			}
			s.accessLog.Print(line)
		}()
		next.ServeHTTP(rec, r)
	})
}

// recoverMW converts a handler panic into a 500 envelope and keeps
// the server serving. A panic after the header is committed can only
// truncate the stream — the status is already on the wire.
func (s *Server) recoverMW(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		defer func() {
			p := recover()
			if p == nil {
				return
			}
			if p == http.ErrAbortHandler {
				panic(p)
			}
			s.logf("panic serving %s %s: %v\n%s", r.Method, r.URL.Path, p, debug.Stack())
			if rec, ok := w.(*statusRecorder); ok && rec.status != 0 {
				metaFrom(r).code = codeInternal
				return
			}
			writeErr(w, r, http.StatusInternalServerError, codeInternal,
				fmt.Errorf("internal server error"))
		}()
		next.ServeHTTP(w, r)
	})
}

// rateLimitMW spends one token from the caller's bucket (key =
// X-Api-Key, else client IP) and sheds with 429 rate_limited plus
// Retry-After when empty. A daemon started without -rate has no
// limiter and skips straight through.
func (s *Server) rateLimitMW(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if s.limiter == nil {
			next.ServeHTTP(w, r)
			return
		}
		ok, remaining, retry := s.limiter.Allow(clientKey(r), time.Now())
		w.Header().Set("X-RateLimit-Limit", strconv.Itoa(s.limiter.Burst()))
		w.Header().Set("X-RateLimit-Remaining", strconv.Itoa(remaining))
		if !ok {
			s.shed.rateLimited.Inc()
			writeShed(w, r, codeRateLimited, retry,
				fmt.Errorf("rate limit exceeded (%g req/s per key, burst %d)", s.limiter.Rate(), s.limiter.Burst()))
			return
		}
		next.ServeHTTP(w, r)
	})
}

// clientKey identifies the caller for rate limiting: the API key when
// presented, else the client IP without the ephemeral port.
func clientKey(r *http.Request) string {
	if k := r.Header.Get("X-Api-Key"); k != "" {
		return "key:" + k
	}
	host, _, err := net.SplitHostPort(r.RemoteAddr)
	if err != nil {
		return "ip:" + r.RemoteAddr
	}
	return "ip:" + host
}

// writeShed renders a 429 envelope with its Retry-After header — the
// uniform load-shedding response shape.
func writeShed(w http.ResponseWriter, r *http.Request, code string, retry time.Duration, err error) {
	w.Header().Set("Retry-After", strconv.Itoa(int(retry/time.Second)))
	writeErr(w, r, http.StatusTooManyRequests, code, err)
}

// bodyLimitMW caps every request body at -max-body via
// http.MaxBytesReader: the wrapped reader stops at the limit, so an
// oversized upload fails its decode with *http.MaxBytesError (mapped
// to the 413 envelope by writeDecodeErr) without the daemon ever
// buffering the excess.
func (s *Server) bodyLimitMW(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if s.limits.MaxBody > 0 && r.Body != nil {
			r.Body = http.MaxBytesReader(w, r.Body, s.limits.MaxBody)
		}
		next.ServeHTTP(w, r)
	})
}

// withDeadline bounds one request's handler with -request-timeout.
// The handler sees a context that expires at the deadline; handlers
// that consult it (the sync fix pipeline) classify the expiry
// themselves, and for any that return without writing after expiry
// this wrapper supplies the uniform 504 envelope. Streaming routes
// (job results) are mounted without it — an NDJSON download is
// allowed to outlive any fixed budget.
func (s *Server) withDeadline(next http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		d := s.limits.RequestTimeout
		if d <= 0 {
			next(w, r)
			return
		}
		ctx, cancel := context.WithTimeout(r.Context(), d)
		defer cancel()
		rec := &statusRecorder{ResponseWriter: w}
		next(rec, r.WithContext(ctx))
		if rec.status == 0 && ctx.Err() == context.DeadlineExceeded {
			writeErr(rec, r, http.StatusGatewayTimeout, codeDeadlineExceeded,
				fmt.Errorf("request exceeded the %s deadline", d))
		}
	}
}

// withSyncGate caps concurrent synchronous fix runs. Past the cap the
// request sheds immediately — 429 overloaded with a Retry-After
// derived from the observed per-batch service time — instead of
// queueing the connection; completed runs feed that estimate.
func (s *Server) withSyncGate(next http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if s.fixGate == nil {
			next(w, r)
			return
		}
		if !s.fixGate.TryAcquire() {
			s.shed.overloaded.Inc()
			retry := admission.RetryAfter(1, s.fixGate.Capacity(), s.fixTime.Value())
			writeShed(w, r, codeOverloaded, retry,
				fmt.Errorf("synchronous fix capacity (%d) saturated; retry or submit an async job", s.fixGate.Capacity()))
			return
		}
		defer s.fixGate.Release()
		if s.syncFixHook != nil {
			s.syncFixHook()
		}
		next(w, r)
	}
}

// logf writes to the configured error logger (default: the standard
// logger) — panics and internal faults, not access lines.
func (s *Server) logf(format string, args ...any) {
	if s.errorLog != nil {
		s.errorLog.Printf(format, args...)
		return
	}
	log.Printf(format, args...)
}
