// Package core implements the paper's primary contribution: finding
// certain fixes for input tuples with editing rules and master data.
//
// It provides:
//
//   - the chase (the fixing procedure the companion paper [7] calls
//     TFix): given a tuple and a set of validated attributes, repeatedly
//     apply editing rules whose premises are validated, copying values
//     from master data and expanding the validated set, until a
//     fixpoint;
//   - the inference system of the rule engine: the symbolic closure
//     that derives which attributes *can* be validated from a seed set,
//     independent of concrete values (used by the region finder and the
//     monitor's suggestion computation);
//   - static analysis of rule sets: the consistency check of §2
//     ("whether the given rules are dirty themselves").
//
// Every change carries provenance (rule, master tuple, round) so the
// auditing module can show "what attributes are fixed and where the
// correct values come from".
package core

import (
	"fmt"

	"cerfix/internal/master"
	"cerfix/internal/rule"
	"cerfix/internal/schema"
	"cerfix/internal/value"
)

// Source tells who changed or validated a cell.
type Source int

const (
	// SourceUser marks a value asserted correct by the user.
	SourceUser Source = iota
	// SourceRule marks a value fixed/validated by an editing rule.
	SourceRule
)

// String names the source for audit display.
func (s Source) String() string {
	switch s {
	case SourceUser:
		return "user"
	case SourceRule:
		return "rule"
	default:
		return fmt.Sprintf("source(%d)", int(s))
	}
}

// Change is one provenance-tracked cell modification or validation.
type Change struct {
	// Attr is the changed input attribute.
	Attr string
	// Old and New are the before/after values; Old == New when the rule
	// merely confirmed (validated) an already-correct value.
	Old, New value.V
	// Source is who made the change.
	Source Source
	// RuleID identifies the editing rule for SourceRule changes.
	RuleID string
	// MasterID is the witness master tuple's row ID for SourceRule
	// changes.
	MasterID int64
	// Round is the chase round (1-based) in which the change happened;
	// 0 for user assertions.
	Round int
}

// IsRewrite reports whether the change altered the stored value (as
// opposed to confirming it).
func (c Change) IsRewrite() bool { return c.Old != c.New }

// ConflictKind classifies chase-time conflicts.
type ConflictKind int

const (
	// MasterAmbiguous: matching master tuples disagree on the source
	// values, so the rule cannot produce a unique fix for this tuple.
	MasterAmbiguous ConflictKind = iota
	// ValidatedContradiction: the rule derives a value different from
	// one already validated — the assertions and rules are jointly
	// inconsistent on this tuple.
	ValidatedContradiction
)

// String names the conflict kind.
func (k ConflictKind) String() string {
	switch k {
	case MasterAmbiguous:
		return "master-ambiguous"
	case ValidatedContradiction:
		return "validated-contradiction"
	default:
		return fmt.Sprintf("conflict(%d)", int(k))
	}
}

// Conflict records a rule application that could not proceed soundly.
type Conflict struct {
	Kind     ConflictKind
	RuleID   string
	Attr     string  // offending attribute (empty for MasterAmbiguous)
	Have     value.V // validated value in the tuple (ValidatedContradiction)
	Want     value.V // value master data derives
	MasterID int64   // witness master tuple where applicable
	Detail   string
}

// Error renders the conflict as a message.
func (c Conflict) Error() string {
	switch c.Kind {
	case MasterAmbiguous:
		return fmt.Sprintf("rule %s: master data ambiguous (%s)", c.RuleID, c.Detail)
	case ValidatedContradiction:
		return fmt.Sprintf("rule %s: derived %s=%q contradicts validated value %q",
			c.RuleID, c.Attr, string(c.Want), string(c.Have))
	default:
		return fmt.Sprintf("rule %s: conflict", c.RuleID)
	}
}

// Engine binds an input schema, a rule set and a master store.
type Engine struct {
	input *schema.Schema
	rules *rule.Set
	store *master.Store
	// prog is the compiled chase program: the rule set resolved once
	// into index form (see compile.go). Compiled in NewEngine and
	// shared by snapshots — it depends only on the schema and the
	// immutable-after-publish rule set, never on master data.
	prog *chaseProgram
}

// NewEngine validates the rule set against both schemas, builds master
// indexes for every rule, compiles the chase program, and returns the
// engine.
//
// The engine treats the rule set as immutable after publication: to
// change rules, build a new set (rule.Set.Clone + Add/Remove) and a
// new engine around it, as cerfix.System does. This discipline is
// what lets Snapshot share the set — and the compiled program —
// instead of recomputing them.
func NewEngine(input *schema.Schema, rules *rule.Set, store *master.Store) (*Engine, error) {
	if err := rules.Validate(input, store.Schema()); err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	if err := store.PrepareForRules(rules); err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	return &Engine{
		input: input,
		rules: rules,
		store: store,
		prog:  compileProgram(input, rules.Rules()),
	}, nil
}

// Snapshot returns a frozen O(1) view of the engine that any number
// of goroutines may chase against while the live engine's master data
// keeps changing — the view the batch pipeline and concurrent job
// runners fix over. The master store is captured atomically under its
// own lock (see master.Store.Snapshot) and the rule set is shared
// under the immutable-after-publish discipline, so the call needs no
// external serialization and its cost is independent of master size.
func (e *Engine) Snapshot() *Engine {
	return &Engine{input: e.input, rules: e.rules, store: e.store.Snapshot(), prog: e.prog}
}

// SnapshotDeep is the legacy deep-clone snapshot — cloned rule set
// plus a deep-copied master store, O(master size). Retained as the
// benchmark baseline for Snapshot (cerfixbench e9) and for callers
// that need a private copy of the whole engine state, e.g. to mutate
// the cloned MASTER data without affecting the original.
//
// The chase program is recompiled from the cloned set so the clone
// shares no rule objects with the original. The immutable-after-
// publish discipline still applies per engine: as everywhere, adding
// or removing rules afterwards means building a new engine around a
// new set (NewEngine), as cerfix.System does.
func (e *Engine) SnapshotDeep() *Engine {
	rs := e.rules.Clone()
	return &Engine{input: e.input, rules: rs, store: e.store.CloneDeep(), prog: compileProgram(e.input, rs.Rules())}
}

// InputSchema returns the input relation's schema.
func (e *Engine) InputSchema() *schema.Schema { return e.input }

// Rules returns the engine's rule set.
func (e *Engine) Rules() *rule.Set { return e.rules }

// Master returns the engine's master store.
func (e *Engine) Master() *master.Store { return e.store }

// PrefilterStats returns the compiled program's lifetime premise
// prefilter totals — rules skipped before reaching the agenda and
// rules evaluated — aggregated across every chase on this engine and
// all its snapshots (they share the program). The counters reset when
// the rule set changes, since that builds a new engine and program.
func (e *Engine) PrefilterStats() (skipped, evaluated int64) {
	return e.prog.skipped.Load(), e.prog.evaluated.Load()
}

// ChaseResult is the outcome of one chase run.
type ChaseResult struct {
	// Tuple is the fixed copy of the input (the original is untouched).
	Tuple *schema.Tuple
	// Validated is the final validated attribute set.
	Validated schema.AttrSet
	// Changes lists rule-made modifications and confirmations in
	// application order.
	Changes []Change
	// Conflicts lists soundness violations encountered; a non-empty
	// list means the fix is not certain.
	Conflicts []Conflict
	// Rounds is the number of fixpoint iterations performed.
	Rounds int
	// Stats reports the compiled chase's prefilter effectiveness for
	// this run. ChaseLegacy has no prefilter and leaves it zero; it
	// carries no fixing semantics, so the compiled/legacy parity
	// contract does not cover it.
	Stats ChaseStats
}

// ChaseStats counts the premise prefilter's work avoidance in one
// chase: RulesSkipped premise-ready rules were rejected before
// reaching the agenda (each saves a pattern match and usually a master
// probe), RulesEvaluated reached it. Program-lifetime totals aggregate
// in the compiled program; see Engine.PrefilterStats.
type ChaseStats struct {
	RulesSkipped   int
	RulesEvaluated int
}

// AllValidated reports whether every attribute ended validated.
func (r *ChaseResult) AllValidated() bool {
	return r.Validated == schema.FullSet(r.Tuple.Schema)
}

// Clone returns a deep copy safe to retain indefinitely: the tuple,
// change list and conflict list share nothing with r. Zero-length
// slices normalize to nil — the shape a fresh sequential chase
// produces — so a clone of a buffer-reusing result (Chaser.ChaseInto
// truncates rather than nils its slices) compares and serializes
// identically to the sequential path's output.
func (r *ChaseResult) Clone() *ChaseResult {
	cp := &ChaseResult{Tuple: r.Tuple.Clone(), Validated: r.Validated, Rounds: r.Rounds, Stats: r.Stats}
	if len(r.Changes) > 0 {
		cp.Changes = append([]Change(nil), r.Changes...)
	}
	if len(r.Conflicts) > 0 {
		cp.Conflicts = append([]Conflict(nil), r.Conflicts...)
	}
	return cp
}

// Rewrites returns only the changes that altered values.
func (r *ChaseResult) Rewrites() []Change {
	var out []Change
	for _, c := range r.Changes {
		if c.IsRewrite() {
			out = append(out, c)
		}
	}
	return out
}

// RewriteCount is len(Rewrites()) without materializing the slice —
// the counter the pipeline's per-tuple hot paths (stats, sink
// records) share so the rewrite definition lives in one place.
func (r *ChaseResult) RewriteCount() int {
	n := 0
	for i := range r.Changes {
		if r.Changes[i].IsRewrite() {
			n++
		}
	}
	return n
}

// Chase runs the fixing procedure on a copy of t, starting from the
// validated attribute set. Semantics per rule, in rule-set order:
//
//  1. the premise X ∪ Xp must be validated;
//  2. the pattern tp must match the current tuple;
//  3. the master lookup on Xm = t[X] must return a unique RHS — no
//     match skips silently, disagreement records a MasterAmbiguous
//     conflict (once per rule);
//  4. each target B: if unvalidated, write s[Bm] (a Change; Old==New
//     when confirming) and validate it; if already validated and equal,
//     nothing; if validated and different, record a
//     ValidatedContradiction and leave the value alone.
//
// Rounds repeat until no rule validates a new attribute or changes a
// value. Because each productive application validates at least one
// previously-unvalidated attribute, the chase terminates within
// |attrs| + 1 rounds.
//
// Chase executes the engine's compiled program with agenda scheduling
// (see compile.go); results are byte-identical to the legacy
// round-robin loop, which ChaseLegacy retains as the parity oracle
// and benchmark baseline. The chaser comes from the engine's pool
// (AcquireChaser), so interactive one-off fixes reuse the scratch a
// previous call — or a finished batch run on any snapshot of this
// engine — already warmed, instead of paying the compile-scratch
// setup per call.
func (e *Engine) Chase(t *schema.Tuple, validated schema.AttrSet) *ChaseResult {
	c := e.AcquireChaser()
	res := c.Chase(t, validated)
	c.Release()
	return res
}

// ChaseLegacy is the original chase executor: every round rescans the
// entire rule set in order, re-resolving attribute names, premise and
// target sets and projection keys per application. Retained as the
// benchmark baseline for the compiled program (cerfixbench e10) and
// as the oracle of the compiled/legacy parity suite — it is the
// reference semantics the compiled path must reproduce byte for byte.
func (e *Engine) ChaseLegacy(t *schema.Tuple, validated schema.AttrSet) *ChaseResult {
	res := &ChaseResult{Tuple: t.Clone(), Validated: validated}
	rules := e.rules.Rules()
	reportedAmbiguous := make(map[string]bool)
	reportedContradiction := make(map[string]bool)
	for round := 1; ; round++ {
		progressed := false
		for _, r := range rules {
			if e.applyRule(r, res, round, reportedAmbiguous, reportedContradiction) {
				progressed = true
			}
		}
		res.Rounds = round
		if !progressed {
			return res
		}
	}
}

// applyRule attempts one rule application (the legacy executor's
// inner step), returning whether it made progress (validated a new
// attribute or rewrote a value). One master lookup serves fixing, the
// contradiction sweep over already-validated targets, and ambiguity
// detection.
func (e *Engine) applyRule(r *rule.Rule, res *ChaseResult, round int,
	reportedAmbiguous, reportedContradiction map[string]bool) bool {

	premise := r.PremiseAttrs(e.input)
	if !res.Validated.ContainsAll(premise) {
		return false
	}
	if !r.When.Matches(res.Tuple) {
		return false
	}
	rhs, witness, status := e.store.UniqueRHSForRule(r, res.Tuple)
	switch status {
	case master.NoMatch:
		return false
	case master.Conflict:
		// With every target already validated the rule has nothing
		// left to fix and the ambiguity is moot: skip silently.
		if res.Validated.ContainsAll(r.TargetAttrs(e.input)) {
			return false
		}
		if !reportedAmbiguous[r.ID] {
			reportedAmbiguous[r.ID] = true
			res.Conflicts = append(res.Conflicts, Conflict{
				Kind:   MasterAmbiguous,
				RuleID: r.ID,
				Detail: fmt.Sprintf("key %v on %v", res.Tuple.Project(r.MatchInputAttrs()).Strings(), r.MatchMasterAttrs()),
			})
		}
		return false
	}
	progressed := false
	for i, corr := range r.Set {
		b := corr.Input
		bi := e.input.MustIndex(b)
		want := rhs[i]
		have := res.Tuple.At(bi)
		if res.Validated.Has(bi) {
			if have != want {
				key := r.ID + "\x00" + b
				if !reportedContradiction[key] {
					reportedContradiction[key] = true
					res.Conflicts = append(res.Conflicts, Conflict{
						Kind:     ValidatedContradiction,
						RuleID:   r.ID,
						Attr:     b,
						Have:     have,
						Want:     want,
						MasterID: witness,
					})
				}
			}
			continue
		}
		res.Tuple.Vals[bi] = want
		res.Validated = res.Validated.With(bi)
		res.Changes = append(res.Changes, Change{
			Attr:     b,
			Old:      have,
			New:      want,
			Source:   SourceRule,
			RuleID:   r.ID,
			MasterID: witness,
			Round:    round,
		})
		progressed = true
	}
	return progressed
}
