// Package pipeline is the batch-repair engine of the CerFix
// reproduction: a streaming, sharded executor for non-interactive
// certain-fix passes over large datasets. The paper's data monitor
// "supports several interfaces to access data, which could be readily
// integrated with other database applications" (§3); this package is
// that integration point at scale.
//
// Because master data and editing rules are frozen for the duration of
// a batch (callers snapshot the engine first when the live system may
// mutate — core.Engine.Snapshot), each tuple's certain-fix chase is
// independent of every other tuple's: batch repair is embarrassingly
// parallel. Run shards the input across N workers, each owning a
// reusable core.Chaser — the compiled chase program's executor, whose
// per-rule master handles and scratch buffers amortize across the
// worker's whole shard — against the shared read-only engine, and
// re-sequences results so the sink observes exactly the order — and
// exactly the bytes — the sequential path would have produced.
//
// Memory stays flat regardless of input size: tuples flow through
// bounded channels, and an in-flight window caps how far the reader
// may run ahead of the slowest unfinished tuple, so a slow sink (or
// one pathological tuple) stalls the source instead of ballooning the
// resequencing buffer.
//
// Sources and sinks are small interfaces; CSV and JSONL streaming
// implementations live in io.go, and slice-backed ones serve the HTTP
// batch endpoint and tests.
package pipeline

import (
	"context"
	"errors"
	"fmt"
	"io"
	"runtime"
	"sync"

	"cerfix/internal/core"
	"cerfix/internal/schema"
)

// Options tunes a pipeline run. The zero value (or nil) picks
// defaults good for throughput on the current machine.
type Options struct {
	// Workers is the number of parallel chase workers; 1 degenerates
	// to the sequential path. Default: GOMAXPROCS.
	Workers int
	// Window is the maximum number of tuples in flight between source
	// and sink (the backpressure bound: reader admission, channel
	// capacity and resequencing buffer all live inside it).
	// Default: 16 per worker, minimum 64.
	Window int
	// ChunkSize is how many consecutive tuples ride one work unit.
	// Chunking amortizes channel operations when individual fixes are
	// microsecond-cheap (the rule-index access path). Default 16.
	ChunkSize int
}

func (o *Options) workers() int {
	if o == nil || o.Workers <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return o.Workers
}

func (o *Options) window(workers int) int {
	if o == nil || o.Window <= 0 {
		w := 16 * workers
		if w < 64 {
			w = 64
		}
		return w
	}
	return o.Window
}

func (o *Options) chunkSize() int {
	if o == nil || o.ChunkSize <= 0 {
		return 16
	}
	return o.ChunkSize
}

// Source yields input tuples in order; Next returns io.EOF when the
// stream is drained.
type Source interface {
	Next() (*schema.Tuple, error)
}

// Result is one tuple's outcome. Sinks receive results strictly in
// input order.
type Result struct {
	// Seq is the tuple's 0-based position in the input stream.
	Seq int
	// Input is the tuple as read from the source.
	Input *schema.Tuple
	// Fixed is the chased copy (Input is untouched).
	Fixed *schema.Tuple
	// Chase carries the full outcome: changes, conflicts, rounds.
	Chase *core.ChaseResult
}

// Sink consumes results in input order. Write errors abort the run.
type Sink interface {
	Write(*Result) error
}

// SinkFunc adapts a function to the Sink interface.
type SinkFunc func(*Result) error

// Write implements Sink.
func (f SinkFunc) Write(r *Result) error { return f(r) }

// Discard drops every result; useful when only Stats matter.
var Discard Sink = SinkFunc(func(*Result) error { return nil })

// Stats aggregates a run, mirroring the counters of the sequential
// CLI and HTTP paths. The JSON tags are the wire shape of the jobs
// API and journal (snake_case, like every other API field).
type Stats struct {
	// Tuples is the number of tuples processed.
	Tuples int `json:"tuples"`
	// FullyValidated counts tuples whose every attribute ended
	// validated with no conflicts.
	FullyValidated int `json:"fully_validated"`
	// WithConflicts counts tuples that hit at least one conflict.
	WithConflicts int `json:"with_conflicts"`
	// CellsRewritten counts rule-made value changes across the batch.
	CellsRewritten int `json:"cells_rewritten"`
	// Workers is the worker count the run actually used.
	Workers int `json:"workers"`
}

// chunk is one work unit: up to ChunkSize consecutive tuples.
type chunk struct {
	startSeq int
	tuples   []*schema.Tuple
}

// chunkResult carries a chunk's outcomes, index-aligned with tuples.
type chunkResult struct {
	startSeq int
	results  []*Result
}

// Run executes a non-interactive certain-fix pass over every tuple of
// src, asserting the validated attribute set, and streams results to
// sink in input order. The engine must not be mutated during the run;
// when the live system may change concurrently, pass a snapshot
// (core.Engine.Snapshot). Output is byte-identical to calling
// eng.Chase per tuple sequentially.
//
// Cancelling ctx aborts the run: the reader stops admitting tuples,
// workers drain, and Run returns the partial Stats accumulated so far
// together with ctx's error. Because every stage parks inside the
// in-flight window, cancellation is observed within at most one
// window's worth of tuples — it never deadlocks on a full channel.
func Run(ctx context.Context, eng *core.Engine, validated schema.AttrSet, src Source, sink Sink, opts *Options) (Stats, error) {
	workers := opts.workers()
	chunkSize := opts.chunkSize()
	window := opts.window(workers)
	if window < chunkSize {
		// The reader acquires tokens before a chunk is flushed; a
		// window smaller than one chunk could strand the oldest
		// in-flight tuple inside the reader and deadlock.
		window = chunkSize
	}
	nChunks := window/chunkSize + 1

	var (
		jobs     = make(chan chunk, nChunks)
		results  = make(chan chunkResult, nChunks)
		inflight = make(chan struct{}, window) // admission tokens, 1/tuple
		done     = make(chan struct{})
		errOnce  sync.Once
		runErr   error
	)
	fail := func(err error) {
		errOnce.Do(func() {
			runErr = err
			close(done)
		})
	}
	if ctx != nil {
		// A context cancelled before the run starts aborts
		// synchronously — no tuple is admitted on the watcher's
		// scheduling luck.
		if err := ctx.Err(); err != nil {
			return Stats{Workers: workers}, err
		}
	}
	if ctx != nil && ctx.Done() != nil {
		// Propagate external cancellation into the pipeline's own done
		// channel; the watcher exits with the run.
		finished := make(chan struct{})
		defer close(finished)
		go func() {
			select {
			case <-ctx.Done():
				fail(ctx.Err())
			case <-done:
			case <-finished:
			}
		}()
	}

	// Stage 1 — reader: batch the stream into chunks, admitting at
	// most window tuples past the resequencer's emit frontier.
	go func() {
		defer close(jobs)
		cur := chunk{}
		flush := func() bool {
			if len(cur.tuples) == 0 {
				return true
			}
			select {
			case jobs <- cur:
				cur = chunk{startSeq: cur.startSeq + len(cur.tuples)}
				return true
			case <-done:
				return false
			}
		}
		for seq := 0; ; seq++ {
			tu, err := src.Next()
			if err == io.EOF {
				flush()
				return
			}
			if err != nil {
				fail(fmt.Errorf("pipeline: reading tuple %d: %w", seq, err))
				return
			}
			select {
			case inflight <- struct{}{}:
			case <-done:
				return
			}
			cur.tuples = append(cur.tuples, tu)
			if len(cur.tuples) >= chunkSize {
				if !flush() {
					return
				}
			}
		}
	}()

	// Stage 2 — sharded workers: each owns a reusable chaser against
	// the shared read-only engine.
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			chaser := eng.NewChaser()
			for c := range jobs {
				out := chunkResult{startSeq: c.startSeq, results: make([]*Result, len(c.tuples))}
				for i, tu := range c.tuples {
					res := chaser.Chase(tu, validated)
					out.results[i] = &Result{Seq: c.startSeq + i, Input: tu, Fixed: res.Tuple, Chase: res}
				}
				select {
				case results <- out:
				case <-done:
					return
				}
			}
		}()
	}
	go func() {
		wg.Wait()
		close(results)
	}()

	// Stage 3 — resequencer: restore input order, release admission
	// tokens, feed the sink.
	stats := Stats{Workers: workers}
	pending := make(map[int]chunkResult)
	next := 0
	emit := func(cr chunkResult) bool {
		for _, r := range cr.results {
			stats.Tuples++
			if r.Chase.AllValidated() && len(r.Chase.Conflicts) == 0 {
				stats.FullyValidated++
			}
			if len(r.Chase.Conflicts) > 0 {
				stats.WithConflicts++
			}
			stats.CellsRewritten += len(r.Chase.Rewrites())
			if err := sink.Write(r); err != nil {
				fail(fmt.Errorf("pipeline: writing tuple %d: %w", r.Seq, err))
				return false
			}
			<-inflight
		}
		next = cr.startSeq + len(cr.results)
		return true
	}
loop:
	for cr := range results {
		if cr.startSeq != next {
			pending[cr.startSeq] = cr
			continue
		}
		if !emit(cr) {
			break loop
		}
		for {
			nc, ok := pending[next]
			if !ok {
				break
			}
			delete(pending, next)
			if !emit(nc) {
				break loop
			}
		}
	}
	// Seal the error slot before reading it: every in-pipeline failure
	// is already ordered before this point (fail → close(done) →
	// worker exit → close(results) → loop end), but the ctx watcher
	// runs unsynchronized — claiming the Once here means a
	// cancellation that lost the race with a completed run can no
	// longer write.
	errOnce.Do(func() {})
	if runErr != nil {
		return stats, runErr
	}
	if len(pending) > 0 {
		// Unreachable unless a worker died; keep the invariant loud.
		return stats, errors.New("pipeline: results missing from resequencer")
	}
	return stats, nil
}
