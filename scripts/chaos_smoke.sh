#!/usr/bin/env bash
# Chaos smoke for the runtime guardrails: boot the real daemon with
# tight limits and CERFIX_CHAOS=1 (the guard chaos seam: reserved tuple
# values inject worker panics and stalls), then prove at the process
# level that
#
#   - an over--max-body request answers the typed 413 and the daemon
#     stays serving;
#   - a job carrying the chaos panic value fails with the goroutine
#     stack journaled to its record, while the daemon keeps serving
#     and the next clean job completes;
#   - a job carrying the chaos stall value is cancelled by the
#     stuck-job watchdog within a few stall-timeouts (it stalls on
#     every attempt, so bounded retries end in a terminal failure with
#     the stall reason);
#   - after all of the above, /api/v1/status still answers and a sync
#     /fix still works.
#
# Environment knobs: PORT (default 18092), WORK (scratch dir, default
# mktemp -d).
set -euo pipefail

cd "$(dirname "$0")/.."

BIN=${BIN:-$(mktemp -d)/cerfixd}
WORK=${WORK:-$(mktemp -d)}
PORT=${PORT:-18092}
BASE="http://127.0.0.1:$PORT"
DAEMON=""

go build -o "$BIN" ./cmd/cerfixd

CERFIX_CHAOS=1 "$BIN" -addr "127.0.0.1:$PORT" -demo \
  -jobs-dir "$WORK/jobs" \
  -max-body 4KiB -request-timeout 5s \
  -stall-timeout 500ms -job-timeout 30s &
DAEMON=$!
trap 'kill "$DAEMON" 2>/dev/null || true; wait "$DAEMON" 2>/dev/null || true' EXIT

for _ in $(seq 1 100); do
  if curl -sf "$BASE/api/v1/status" > /dev/null 2>&1; then break; fi
  sleep 0.1
done
curl -sf "$BASE/api/v1/status" > /dev/null || { echo "FAIL: daemon did not come up" >&2; exit 1; }

tuple() { # $1 = zip value
  printf '{"FN":"Bob","LN":"Brady","AC":"020","phn":"079172485","type":"2","str":"501 Elm St.","city":"Edi","zip":"%s","item":"CD"}' "$1"
}

submit_job() { # $1 = tuple json; prints job id
  curl -s -X POST "$BASE/api/v1/jobs" -H 'Content-Type: application/json' \
    -d "{\"validated\":[\"phn\",\"type\",\"item\"],\"tuples\":[$1]}" \
    | sed -n 's/.*"id":"\([^"]*\)".*/\1/p'
}

wait_terminal() { # $1 = job id, $2 = max iterations (x200ms)
  for _ in $(seq 1 "$2"); do
    state=$(curl -sf "$BASE/api/v1/jobs/$1" | sed -n 's/.*"state":"\([^"]*\)".*/\1/p' || true)
    case "$state" in done|failed|cancelled) echo "$state"; return 0 ;; esac
    sleep 0.2
  done
  echo "timeout"
}

# --- 1. oversized body → typed 413, daemon unharmed ---------------------
BODY=$(python3 -c 'print("{\"validated\":[\"zip\"],\"tuples\":[{\"zip\":\"" + "9"*8192 + "\"}]}")' 2>/dev/null \
  || awk 'BEGIN { s=""; for (i=0;i<8192;i++) s=s"9"; printf "{\"validated\":[\"zip\"],\"tuples\":[{\"zip\":\"%s\"}]}", s }')
STATUS=$(curl -s -o "$WORK/413.json" -w '%{http_code}' -X POST "$BASE/api/v1/fix" \
  -H 'Content-Type: application/json' -d "$BODY")
[ "$STATUS" = "413" ] || { echo "FAIL: oversized body answered $STATUS, want 413" >&2; cat "$WORK/413.json" >&2; exit 1; }
grep -q '"body_too_large"' "$WORK/413.json" || { echo "FAIL: 413 body lacks the typed code" >&2; exit 1; }
echo "chaos smoke: oversized body -> 413 body_too_large OK"

# --- 2. panicking job → failed with journaled stack, daemon serving -----
PANIC_JOB=$(submit_job "$(tuple __chaos_panic__)")
[ -n "$PANIC_JOB" ] || { echo "FAIL: panic-job submit returned no id" >&2; exit 1; }
STATE=$(wait_terminal "$PANIC_JOB" 100)
[ "$STATE" = "failed" ] || { echo "FAIL: panic job ended $STATE, want failed" >&2; exit 1; }
curl -sf "$BASE/api/v1/jobs/$PANIC_JOB" > "$WORK/panic.json"
grep -q '"panic_stack"' "$WORK/panic.json" || { echo "FAIL: panic job has no journaled stack" >&2; cat "$WORK/panic.json" >&2; exit 1; }
grep -q 'goroutine' "$WORK/panic.json" || { echo "FAIL: panic_stack is not a goroutine stack" >&2; exit 1; }
echo "chaos smoke: runner panic -> failed job with journaled stack OK"

# --- 3. stalled job → watchdog cancels within the stall timeout ---------
START=$(date +%s)
STALL_JOB=$(submit_job "$(tuple __chaos_stall__)")
[ -n "$STALL_JOB" ] || { echo "FAIL: stall-job submit returned no id" >&2; exit 1; }
# Stalls on every attempt (CERFIX_CHAOS arms an unlimited stall budget),
# so bounded retries (default 3 attempts x 500ms stall timeout) must end
# terminally — well under the 20s cap below.
STATE=$(wait_terminal "$STALL_JOB" 100)
ELAPSED=$(( $(date +%s) - START ))
[ "$STATE" = "failed" ] || { echo "FAIL: stalled job ended $STATE, want failed" >&2; exit 1; }
curl -sf "$BASE/api/v1/jobs/$STALL_JOB" | grep -q 'stalled' || { echo "FAIL: failure reason is not the stall" >&2; exit 1; }
[ "$ELAPSED" -lt 20 ] || { echo "FAIL: watchdog took ${ELAPSED}s to put the stalled job down" >&2; exit 1; }
echo "chaos smoke: stalled job -> watchdog-failed in ${ELAPSED}s OK"

# --- 4. daemon is still fully serving after all of it -------------------
CLEAN_JOB=$(submit_job "$(tuple 'EH7 4AH')")
STATE=$(wait_terminal "$CLEAN_JOB" 100)
[ "$STATE" = "done" ] || { echo "FAIL: clean job after chaos ended $STATE" >&2; exit 1; }
curl -sf -X POST "$BASE/api/v1/fix" -H 'Content-Type: application/json' \
  -d "{\"validated\":[\"zip\",\"phn\",\"type\",\"item\"],\"tuples\":[$(tuple 'EH7 4AH')]}" \
  | grep -q '"cells_rewritten":1' || { echo "FAIL: sync fix broken after chaos" >&2; exit 1; }
curl -sf "$BASE/api/v1/status" | grep -q '"stalls":' || { echo "FAIL: status lost its stall counter" >&2; exit 1; }
echo "chaos smoke OK: daemon survived 413, runner panic and watchdog-stalled job, and kept serving"

# --- 5. memory watermarks: a 1-byte soft watermark sheds submits --------
# A second daemon whose heap is always past -mem-soft: job submissions
# must shed with 429 memory_pressure + Retry-After while /status keeps
# answering and reports the pressure state under guardrails.memory.
kill "$DAEMON" 2>/dev/null || true; wait "$DAEMON" 2>/dev/null || true
"$BIN" -addr "127.0.0.1:$PORT" -demo -jobs-dir "$WORK/jobs2" -mem-soft 1B &
DAEMON=$!
for _ in $(seq 1 100); do
  if curl -sf "$BASE/api/v1/status" > /dev/null 2>&1; then break; fi
  sleep 0.1
done
# Give the background sampler a tick to observe the heap.
sleep 1.5
STATUS=$(curl -s -o "$WORK/shed.json" -w '%{http_code}' -X POST "$BASE/api/v1/jobs" \
  -H 'Content-Type: application/json' \
  -d "{\"validated\":[\"phn\",\"type\",\"item\"],\"tuples\":[$(tuple 'EH7 4AH')]}")
[ "$STATUS" = "429" ] || { echo "FAIL: submit under memory pressure answered $STATUS, want 429" >&2; cat "$WORK/shed.json" >&2; exit 1; }
grep -q '"memory_pressure"' "$WORK/shed.json" || { echo "FAIL: shed lacks the memory_pressure code" >&2; exit 1; }
curl -sf "$BASE/api/v1/status" > "$WORK/memstatus.json"
grep -q '"state":"soft"\|"state":"hard"' "$WORK/memstatus.json" || { echo "FAIL: status does not report memory pressure" >&2; exit 1; }
echo "chaos smoke: 1-byte soft watermark -> 429 memory_pressure + status state OK"
