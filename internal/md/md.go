// Package md implements matching dependencies (MDs), the record-
// matching rule class of reference [6] of the paper ("Reasoning about
// record matching rules"), and their conversion into editing rules —
// the second derivation source the demo's rule engine supports (§2:
// editing rules can be "derived from integrity constraints, e.g., cfds
// and matching dependencies").
//
// An MD has the form
//
//	R1[X1] ≈ R2[X2] → R1[Y1] ⇌ R2[Y2]
//
// "if R1's X1 attributes are similar to R2's X2 attributes, identify
// (match) the Y values". With R1 the input relation and R2 the master
// relation, an MD whose similarity operators are equality converts
// directly into the editing rule match X1~X2 set Y1 := Y2. MDs with
// fuzzy operators (edit-distance similarity) are downgraded to their
// exact-match core for derivation — a documented approximation, since
// editing rules match exactly — but retain their fuzzy semantics for
// record matching itself.
package md

import (
	"fmt"
	"strings"

	"cerfix/internal/rule"
	"cerfix/internal/schema"
	"cerfix/internal/textutil"
	"cerfix/internal/value"
)

// SimKind identifies a similarity operator.
type SimKind int

const (
	// SimEq is exact equality (≈ degenerates to =).
	SimEq SimKind = iota
	// SimEdit is normalized-edit-distance similarity with a threshold:
	// two values are similar when Levenshtein(a,b) <= MaxDist.
	SimEdit
	// SimPrefix considers values similar when one is a prefix of the
	// other after space normalization (catches "501 Elm" vs
	// "501 Elm St").
	SimPrefix
)

// String names the kind.
func (k SimKind) String() string {
	switch k {
	case SimEq:
		return "="
	case SimEdit:
		return "~edit"
	case SimPrefix:
		return "~prefix"
	default:
		return fmt.Sprintf("sim(%d)", int(k))
	}
}

// Similarity is one comparison operator instance.
type Similarity struct {
	// Kind selects the operator.
	Kind SimKind
	// MaxDist is the SimEdit threshold (ignored otherwise).
	MaxDist int
}

// Match reports whether a and b are similar under the operator.
func (s Similarity) Match(a, b value.V) bool {
	switch s.Kind {
	case SimEq:
		return a == b
	case SimEdit:
		return textutil.Levenshtein(string(a), string(b)) <= s.MaxDist
	case SimPrefix:
		na := textutil.NormalizeSpace(string(a))
		nb := textutil.NormalizeSpace(string(b))
		if na == "" || nb == "" {
			return na == nb
		}
		return strings.HasPrefix(na, nb) || strings.HasPrefix(nb, na)
	default:
		return false
	}
}

// IsExact reports whether the operator is plain equality.
func (s Similarity) IsExact() bool { return s.Kind == SimEq }

// Clause is one X1[i] ≈ X2[i] comparison of an MD's premise.
type Clause struct {
	// Left is the input-relation attribute.
	Left string
	// Right is the master-relation attribute.
	Right string
	// Sim is the similarity operator.
	Sim Similarity
}

// String renders "phn ~edit(1) Mphn" style clauses.
func (c Clause) String() string {
	op := c.Sim.Kind.String()
	if c.Sim.Kind == SimEdit {
		op = fmt.Sprintf("~edit(%d)", c.Sim.MaxDist)
	}
	return fmt.Sprintf("%s %s %s", c.Left, op, c.Right)
}

// Identify is one Y1[i] ⇌ Y2[i] consequence: the input attribute is
// identified with the master attribute.
type Identify struct {
	// Left is the input-relation attribute to fix.
	Left string
	// Right is the master-relation attribute supplying the value.
	Right string
}

// MD is one matching dependency across the (input, master) schema
// pair.
type MD struct {
	// ID names the dependency.
	ID string
	// Premise lists the similarity clauses (conjunction).
	Premise []Clause
	// Consequence lists the identified attribute pairs.
	Consequence []Identify
}

// Validate checks attribute existence and non-empty shape.
func (m *MD) Validate(input, master *schema.Schema) error {
	if m.ID == "" {
		return fmt.Errorf("md: empty id")
	}
	if len(m.Premise) == 0 {
		return fmt.Errorf("md %s: empty premise", m.ID)
	}
	if len(m.Consequence) == 0 {
		return fmt.Errorf("md %s: empty consequence", m.ID)
	}
	for _, c := range m.Premise {
		if !input.Has(c.Left) {
			return fmt.Errorf("md %s: premise attribute %q not in input schema", m.ID, c.Left)
		}
		if !master.Has(c.Right) {
			return fmt.Errorf("md %s: premise attribute %q not in master schema", m.ID, c.Right)
		}
		if c.Sim.Kind == SimEdit && c.Sim.MaxDist < 0 {
			return fmt.Errorf("md %s: negative edit threshold", m.ID)
		}
	}
	for _, id := range m.Consequence {
		if !input.Has(id.Left) {
			return fmt.Errorf("md %s: consequence attribute %q not in input schema", m.ID, id.Left)
		}
		if !master.Has(id.Right) {
			return fmt.Errorf("md %s: consequence attribute %q not in master schema", m.ID, id.Right)
		}
	}
	return nil
}

// Matches reports whether input tuple t and master tuple s satisfy the
// premise.
func (m *MD) Matches(t, s *schema.Tuple) bool {
	for _, c := range m.Premise {
		if !c.Sim.Match(t.Get(c.Left), s.Get(c.Right)) {
			return false
		}
	}
	return true
}

// IsExact reports whether every premise clause uses plain equality.
func (m *MD) IsExact() bool {
	for _, c := range m.Premise {
		if !c.Sim.IsExact() {
			return false
		}
	}
	return true
}

// String renders the MD.
func (m *MD) String() string {
	ps := make([]string, len(m.Premise))
	for i, c := range m.Premise {
		ps[i] = c.String()
	}
	cs := make([]string, len(m.Consequence))
	for i, id := range m.Consequence {
		cs[i] = fmt.Sprintf("%s <=> %s", id.Left, id.Right)
	}
	return fmt.Sprintf("%s: %s -> %s", m.ID, strings.Join(ps, " and "), strings.Join(cs, ", "))
}

// Derivation is the result of converting one MD to an editing rule.
type Derivation struct {
	// Rule is the derived editing rule.
	Rule *rule.Rule
	// Downgraded reports that at least one fuzzy premise clause was
	// replaced by exact equality; the rule is stricter than the MD.
	Downgraded bool
}

// DeriveRules converts MDs to editing rules: each premise clause
// becomes a match correspondence (fuzzy operators downgraded to
// equality) and each consequence an assignment.
func DeriveRules(mds []*MD, input, master *schema.Schema) ([]Derivation, error) {
	var out []Derivation
	for _, m := range mds {
		if err := m.Validate(input, master); err != nil {
			return nil, err
		}
		d := Derivation{Downgraded: !m.IsExact()}
		r := &rule.Rule{ID: "er_" + m.ID, Comment: "derived from md " + m.ID}
		if d.Downgraded {
			r.Comment += " (fuzzy premise downgraded to exact match)"
		}
		for _, c := range m.Premise {
			r.Match = append(r.Match, rule.Correspondence{Input: c.Left, Master: c.Right})
		}
		for _, id := range m.Consequence {
			r.Set = append(r.Set, rule.Correspondence{Input: id.Left, Master: id.Right})
		}
		d.Rule = r
		out = append(out, d)
	}
	return out, nil
}

// FindMatches returns the master tuples matching t under the MD — the
// record-matching primitive of [6], usable directly for fuzzy lookup.
func (m *MD) FindMatches(t *schema.Tuple, masterRows []*schema.Tuple) []*schema.Tuple {
	var out []*schema.Tuple
	for _, s := range masterRows {
		if m.Matches(t, s) {
			out = append(out, s)
		}
	}
	return out
}
