package storage

import (
	"encoding/csv"
	"fmt"
	"io"
	"os"

	"cerfix/internal/schema"
	"cerfix/internal/value"
)

// WriteCSV serializes the table to w: a header row of attribute names
// followed by one record per row in insertion order. Row IDs are not
// persisted (they are storage-local).
func (t *Table) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(t.sch.AttrNames()); err != nil {
		return fmt.Errorf("storage: writing csv header: %w", err)
	}
	var scanErr error
	t.Scan(func(tu *schema.Tuple) bool {
		if err := cw.Write(tu.Vals.Strings()); err != nil {
			scanErr = fmt.Errorf("storage: writing csv row: %w", err)
			return false
		}
		return true
	})
	if scanErr != nil {
		return scanErr
	}
	cw.Flush()
	return cw.Error()
}

// ReadCSV loads records from r into the table. The header must list
// exactly the schema's attributes (any order); columns are mapped by
// name so files survive schema attribute reordering.
func (t *Table) ReadCSV(r io.Reader) error {
	cr := csv.NewReader(r)
	header, err := cr.Read()
	if err != nil {
		return fmt.Errorf("storage: reading csv header: %w", err)
	}
	colToAttr := make([]int, len(header))
	seen := make(map[string]bool)
	for i, h := range header {
		idx, ok := t.sch.Index(h)
		if !ok {
			return fmt.Errorf("storage: csv column %q not in schema %s", h, t.sch.Name())
		}
		if seen[h] {
			return fmt.Errorf("storage: duplicate csv column %q", h)
		}
		seen[h] = true
		colToAttr[i] = idx
	}
	if len(seen) != t.sch.Len() {
		return fmt.Errorf("storage: csv header has %d columns, schema %s has %d attributes",
			len(seen), t.sch.Name(), t.sch.Len())
	}
	for line := 2; ; line++ {
		rec, err := cr.Read()
		if err == io.EOF {
			return nil
		}
		if err != nil {
			return fmt.Errorf("storage: csv line %d: %w", line, err)
		}
		vals := make(value.List, t.sch.Len())
		for i, cell := range rec {
			vals[colToAttr[i]] = value.V(cell)
		}
		tu := &schema.Tuple{Schema: t.sch, Vals: vals}
		if _, err := t.Insert(tu); err != nil {
			return fmt.Errorf("storage: csv line %d: %w", line, err)
		}
	}
}

// SaveCSVFile writes the table to path, creating or truncating it.
func (t *Table) SaveCSVFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("storage: %w", err)
	}
	defer f.Close()
	if err := t.WriteCSV(f); err != nil {
		return err
	}
	return f.Sync()
}

// LoadCSVFile reads rows from path into the table.
func (t *Table) LoadCSVFile(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return fmt.Errorf("storage: %w", err)
	}
	defer f.Close()
	return t.ReadCSV(f)
}

// Catalog is a named registry of tables, the storage-level analogue of
// the demo's configured "instance" (input relation + master relation).
type Catalog struct {
	tables map[string]*Table
}

// NewCatalog returns an empty catalog.
func NewCatalog() *Catalog {
	return &Catalog{tables: make(map[string]*Table)}
}

// Create registers a new empty table for sch, keyed by the schema name.
func (c *Catalog) Create(sch *schema.Schema) (*Table, error) {
	if _, dup := c.tables[sch.Name()]; dup {
		return nil, fmt.Errorf("storage: table %q already exists", sch.Name())
	}
	t := NewTable(sch)
	c.tables[sch.Name()] = t
	return t, nil
}

// Get returns the table registered under name.
func (c *Catalog) Get(name string) (*Table, bool) {
	t, ok := c.tables[name]
	return t, ok
}

// Drop removes the named table, reporting whether it existed.
func (c *Catalog) Drop(name string) bool {
	if _, ok := c.tables[name]; !ok {
		return false
	}
	delete(c.tables, name)
	return true
}

// Names lists registered table names (unsorted callers should sort).
func (c *Catalog) Names() []string {
	out := make([]string, 0, len(c.tables))
	for n := range c.tables {
		out = append(out, n)
	}
	return out
}
