package cerfix_test

import (
	"fmt"
	"log"

	"cerfix"
)

// Example reproduces the paper's Example 1/2 through the public API:
// a dirty customer tuple whose area code contradicts its city; after
// the user validates the zip code, the editing rule φ1 fixes the area
// code from master data without touching the correct city.
func Example() {
	input, err := cerfix.NewSchema("CUST",
		cerfix.StringAttrs("FN", "LN", "AC", "phn", "type", "str", "city", "zip", "item")...)
	if err != nil {
		log.Fatal(err)
	}
	person, err := cerfix.NewSchema("PERSON",
		cerfix.StringAttrs("FN", "LN", "AC", "Hphn", "Mphn", "str", "city", "zip", "DOB", "gender")...)
	if err != nil {
		log.Fatal(err)
	}
	sys, err := cerfix.New(input, person, `phi1: match zip~zip set AC := AC`)
	if err != nil {
		log.Fatal(err)
	}
	if err := sys.AddMasterRow(
		"Robert", "Brady", "131", "6884563", "079172485",
		"501 Elm St", "Edi", "EH8 4AH", "11/11/55", "M"); err != nil {
		log.Fatal(err)
	}

	sess, err := sys.NewSession(map[string]string{
		"FN": "Bob", "LN": "Brady", "AC": "020", "phn": "079172485",
		"type": "2", "str": "501 Elm St", "city": "Edi", "zip": "EH8 4AH", "item": "CD",
	})
	if err != nil {
		log.Fatal(err)
	}
	res, err := sess.Validate(map[string]string{"zip": "EH8 4AH"})
	if err != nil {
		log.Fatal(err)
	}
	for _, ch := range res.Rewrites() {
		fmt.Printf("%s: %s -> %s (rule %s)\n", ch.Attr, ch.Old, ch.New, ch.RuleID)
	}
	fmt.Println("city still:", sess.Tuple.Get("city"))
	// Output:
	// AC: 020 -> 131 (rule phi1)
	// city still: Edi
}

// ExampleSystem_CheckConsistency shows the rule engine's static
// analysis: a rule set whose two rules derive conflicting values for
// one entity is rejected with a concrete witness.
func ExampleSystem_CheckConsistency() {
	sch, _ := cerfix.NewSchema("R", cerfix.StringAttrs("k", "a", "b")...)
	sys, _ := cerfix.New(sch, sch, `
good: match k~k set a := a
bad:  match k~k set a := b
`)
	_ = sys.AddMasterRow("K1", "alpha", "beta")
	rep := sys.CheckConsistency()
	fmt.Println("consistent:", rep.Consistent())
	// The first error carries a concrete witness (the order-dependence
	// probe reports the same conflict a second way).
	first := rep.Errors()[0]
	fmt.Println(first.Kind, "on", first.Attr)
	// Output:
	// consistent: false
	// rule-conflict on a
}

// ExampleSystem_Regions shows certain regions: for a key-determined
// schema the smallest region is the key alone.
func ExampleSystem_Regions() {
	sch, _ := cerfix.NewSchema("R", cerfix.StringAttrs("k", "a", "b")...)
	sys, _ := cerfix.New(sch, sch, `
r1: match k~k set a := a
r2: match k~k set b := b
`)
	_ = sys.AddMasterRow("K1", "alpha", "beta")
	for _, reg := range sys.Regions(1) {
		fmt.Println("validate:", reg.AttrNames())
	}
	// Output:
	// validate: [k]
}

// ExampleSystem_Fix shows the non-interactive batch path.
func ExampleSystem_Fix() {
	sch, _ := cerfix.NewSchema("R", cerfix.StringAttrs("k", "a")...)
	sys, _ := cerfix.New(sch, sch, `r1: match k~k set a := a`)
	_ = sys.AddMasterRow("K1", "correct")

	sess, _ := sys.NewSession(map[string]string{"k": "K1", "a": "wrong"})
	fixed, res := sys.Fix(sess.Tuple, []string{"k"})
	fmt.Println(fixed.Get("a"), res.AllValidated())
	// Output:
	// correct true
}
