// Package schema defines relation schemas, tuples and attribute sets —
// the vocabulary every other CerFix package speaks. Input tuples and
// master tuples generally live under *different* schemas (as in the
// demo: a CUST input relation and a PERSON master relation); editing
// rules bridge the two via attribute correspondences.
package schema

import (
	"fmt"
	"sort"
	"strings"

	"cerfix/internal/value"
)

// MaxAttrs bounds the number of attributes per schema. Attribute sets
// are represented as 64-bit bitsets, which comfortably covers the
// relational schemas of the paper (9 and 10 attributes) and the
// synthetic scale-up experiments.
const MaxAttrs = 64

// Attribute describes one column of a relation.
type Attribute struct {
	// Name is the attribute name, unique within its schema and
	// case-sensitive (the paper uses mixed-case names such as FN, AC).
	Name string
	// Domain fixes comparison semantics for the attribute's values.
	Domain value.Domain
	// Desc is an optional human-readable description shown by the web
	// interface and CLIs.
	Desc string
}

// Schema is an immutable ordered list of attributes with a name.
type Schema struct {
	name  string
	attrs []Attribute
	index map[string]int
}

// New builds a schema, validating that attribute names are unique,
// non-empty and at most MaxAttrs in number.
func New(name string, attrs ...Attribute) (*Schema, error) {
	if name == "" {
		return nil, fmt.Errorf("schema: empty schema name")
	}
	if len(attrs) == 0 {
		return nil, fmt.Errorf("schema %s: no attributes", name)
	}
	if len(attrs) > MaxAttrs {
		return nil, fmt.Errorf("schema %s: %d attributes exceeds limit %d", name, len(attrs), MaxAttrs)
	}
	idx := make(map[string]int, len(attrs))
	for i, a := range attrs {
		if a.Name == "" {
			return nil, fmt.Errorf("schema %s: attribute %d has empty name", name, i)
		}
		if _, dup := idx[a.Name]; dup {
			return nil, fmt.Errorf("schema %s: duplicate attribute %q", name, a.Name)
		}
		idx[a.Name] = i
	}
	cp := make([]Attribute, len(attrs))
	copy(cp, attrs)
	return &Schema{name: name, attrs: cp, index: idx}, nil
}

// MustNew is New but panics on error; for static schema literals.
func MustNew(name string, attrs ...Attribute) *Schema {
	s, err := New(name, attrs...)
	if err != nil {
		panic(err)
	}
	return s
}

// Str is shorthand for a string-domain attribute.
func Str(name string) Attribute { return Attribute{Name: name, Domain: value.DString} }

// Int is shorthand for an int-domain attribute.
func Int(name string) Attribute { return Attribute{Name: name, Domain: value.DInt} }

// Name returns the schema's relation name.
func (s *Schema) Name() string { return s.name }

// Len returns the number of attributes.
func (s *Schema) Len() int { return len(s.attrs) }

// Attr returns the attribute at position i.
func (s *Schema) Attr(i int) Attribute { return s.attrs[i] }

// Attrs returns a copy of the attribute list.
func (s *Schema) Attrs() []Attribute {
	cp := make([]Attribute, len(s.attrs))
	copy(cp, s.attrs)
	return cp
}

// AttrNames returns the attribute names in schema order.
func (s *Schema) AttrNames() []string {
	out := make([]string, len(s.attrs))
	for i, a := range s.attrs {
		out[i] = a.Name
	}
	return out
}

// Index returns the position of the named attribute.
func (s *Schema) Index(name string) (int, bool) {
	i, ok := s.index[name]
	return i, ok
}

// MustIndex is Index but panics when the attribute does not exist; used
// where the name was already validated.
func (s *Schema) MustIndex(name string) int {
	i, ok := s.index[name]
	if !ok {
		panic(fmt.Sprintf("schema %s: unknown attribute %q", s.name, name))
	}
	return i
}

// Has reports whether the schema contains the named attribute.
func (s *Schema) Has(name string) bool {
	_, ok := s.index[name]
	return ok
}

// Domain returns the domain of the named attribute, defaulting to
// DString for unknown names (callers validate names separately).
func (s *Schema) Domain(name string) value.Domain {
	if i, ok := s.index[name]; ok {
		return s.attrs[i].Domain
	}
	return value.DString
}

// String renders "Name(attr1,attr2,...)".
func (s *Schema) String() string {
	return s.name + "(" + strings.Join(s.AttrNames(), ",") + ")"
}

// Tuple is one row under a schema. ID is a store-assigned identifier
// (0 when detached). Tuples are mutable; the monitor clones before
// editing so callers keep their originals.
type Tuple struct {
	Schema *Schema
	ID     int64
	Vals   value.List
}

// NewTuple builds a tuple, checking arity.
func NewTuple(s *Schema, vals ...value.V) (*Tuple, error) {
	if len(vals) != s.Len() {
		return nil, fmt.Errorf("schema %s: tuple arity %d, want %d", s.name, len(vals), s.Len())
	}
	cp := make(value.List, len(vals))
	copy(cp, vals)
	return &Tuple{Schema: s, Vals: cp}, nil
}

// MustTuple is NewTuple but panics on arity mismatch.
func MustTuple(s *Schema, vals ...value.V) *Tuple {
	t, err := NewTuple(s, vals...)
	if err != nil {
		panic(err)
	}
	return t
}

// TupleFromMap builds a tuple from an attribute->value map; absent
// attributes become null, unknown keys are an error.
func TupleFromMap(s *Schema, m map[string]string) (*Tuple, error) {
	vals := make(value.List, s.Len())
	for k, v := range m {
		i, ok := s.Index(k)
		if !ok {
			return nil, fmt.Errorf("schema %s: unknown attribute %q", s.name, k)
		}
		vals[i] = value.V(v)
	}
	return &Tuple{Schema: s, Vals: vals}, nil
}

// Get returns the value of the named attribute.
func (t *Tuple) Get(name string) value.V {
	return t.Vals[t.Schema.MustIndex(name)]
}

// Set assigns the value of the named attribute.
func (t *Tuple) Set(name string, v value.V) {
	t.Vals[t.Schema.MustIndex(name)] = v
}

// At returns the value at position i.
func (t *Tuple) At(i int) value.V { return t.Vals[i] }

// Clone returns a deep copy sharing the schema.
func (t *Tuple) Clone() *Tuple {
	cp := make(value.List, len(t.Vals))
	copy(cp, t.Vals)
	return &Tuple{Schema: t.Schema, ID: t.ID, Vals: cp}
}

// Equal reports whether two tuples agree on every attribute (IDs are
// ignored; schemas must be the same object or have equal layouts).
func (t *Tuple) Equal(o *Tuple) bool {
	if t.Schema.Len() != o.Schema.Len() {
		return false
	}
	return t.Vals.Equal(o.Vals)
}

// Project returns the values of the named attributes, in the given
// order.
func (t *Tuple) Project(names []string) value.List {
	out := make(value.List, len(names))
	for i, n := range names {
		out[i] = t.Get(n)
	}
	return out
}

// ProjectAt returns the values at the given positions, in order.
// The position-resolved sibling of Project for callers that resolved
// names once (compiled rule plans).
func (t *Tuple) ProjectAt(positions []int) value.List {
	out := make(value.List, len(positions))
	for i, p := range positions {
		out[i] = t.Vals[p]
	}
	return out
}

// AppendKeyAt appends the value.List.Key encoding of the tuple's
// projection on the given positions to dst and returns the extended
// slice. Byte-identical to t.ProjectAt(positions).Key() but with no
// intermediate list or string: the chase's per-probe key encode runs
// allocation-free against a reused scratch buffer.
func (t *Tuple) AppendKeyAt(dst []byte, positions []int) []byte {
	for _, p := range positions {
		dst = value.AppendKeyV(dst, t.Vals[p])
	}
	return dst
}

// Map renders the tuple as an attribute->string map (for JSON and
// display).
func (t *Tuple) Map() map[string]string {
	m := make(map[string]string, t.Schema.Len())
	for i, a := range t.Schema.attrs {
		m[a.Name] = string(t.Vals[i])
	}
	return m
}

// String renders "name(attr=val, ...)" with attributes in schema order.
func (t *Tuple) String() string {
	var b strings.Builder
	b.WriteString(t.Schema.name)
	b.WriteString("(")
	for i, a := range t.Schema.attrs {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "%s=%s", a.Name, t.Vals[i])
	}
	b.WriteString(")")
	return b.String()
}

// DiffAttrs returns the names of attributes where t and o differ,
// sorted. Both tuples must share the schema layout.
func (t *Tuple) DiffAttrs(o *Tuple) []string {
	var out []string
	for i, a := range t.Schema.attrs {
		if t.Vals[i] != o.Vals[i] {
			out = append(out, a.Name)
		}
	}
	sort.Strings(out)
	return out
}
