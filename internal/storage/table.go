// Package storage is the embedded relational substrate that stands in
// for the demo's JDBC data connection. CerFix's data monitor "supports
// several interfaces to access data" (paper §3); this package provides
// the one our build uses: schema-typed tables with auto-assigned row
// IDs, predicate scans, hash indexes over attribute lists (the access
// path editing-rule lookups need), and CSV import/export for
// persistence.
package storage

import (
	"fmt"
	"sort"
	"sync"

	"cerfix/internal/schema"
	"cerfix/internal/value"
)

// Table is a mutable, thread-safe relation instance.
type Table struct {
	mu      sync.RWMutex
	sch     *schema.Schema
	rows    map[int64]*schema.Tuple
	order   []int64 // insertion order of live row IDs
	nextID  int64
	indexes map[string]*hashIndex
}

// NewTable creates an empty table under sch.
func NewTable(sch *schema.Schema) *Table {
	return &Table{
		sch:     sch,
		rows:    make(map[int64]*schema.Tuple),
		nextID:  1,
		indexes: make(map[string]*hashIndex),
	}
}

// Schema returns the table's schema.
func (t *Table) Schema() *schema.Schema { return t.sch }

// Len returns the number of live rows.
func (t *Table) Len() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return len(t.rows)
}

// Insert stores a copy of tu, assigns it a fresh ID and returns the ID.
// The tuple must belong to the table's schema.
func (t *Table) Insert(tu *schema.Tuple) (int64, error) {
	if tu.Schema != t.sch {
		return 0, fmt.Errorf("storage: tuple schema %s does not match table schema %s",
			tu.Schema.Name(), t.sch.Name())
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	cp := tu.Clone()
	cp.ID = t.nextID
	t.nextID++
	t.rows[cp.ID] = cp
	t.order = append(t.order, cp.ID)
	for _, idx := range t.indexes {
		idx.add(cp)
	}
	return cp.ID, nil
}

// InsertValues is a convenience wrapper building the tuple in place.
func (t *Table) InsertValues(vals ...value.V) (int64, error) {
	tu, err := schema.NewTuple(t.sch, vals...)
	if err != nil {
		return 0, err
	}
	return t.Insert(tu)
}

// Get returns a copy of the row with the given ID.
func (t *Table) Get(id int64) (*schema.Tuple, bool) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	tu, ok := t.rows[id]
	if !ok {
		return nil, false
	}
	return tu.Clone(), true
}

// Update replaces the row with tu.ID by a copy of tu.
func (t *Table) Update(tu *schema.Tuple) error {
	if tu.Schema != t.sch {
		return fmt.Errorf("storage: tuple schema mismatch")
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	old, ok := t.rows[tu.ID]
	if !ok {
		return fmt.Errorf("storage: row %d not found", tu.ID)
	}
	for _, idx := range t.indexes {
		idx.remove(old)
	}
	cp := tu.Clone()
	t.rows[cp.ID] = cp
	for _, idx := range t.indexes {
		idx.add(cp)
	}
	return nil
}

// Delete removes the row with the given ID, reporting whether it
// existed.
func (t *Table) Delete(id int64) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	tu, ok := t.rows[id]
	if !ok {
		return false
	}
	for _, idx := range t.indexes {
		idx.remove(tu)
	}
	delete(t.rows, id)
	for i, oid := range t.order {
		if oid == id {
			t.order = append(t.order[:i], t.order[i+1:]...)
			break
		}
	}
	return true
}

// Clone returns an isolated copy of the table: fresh row registry,
// insertion order and index structures. Stored tuples are shared — the
// table never mutates a stored row in place (inserts and updates swap
// in fresh copies) — so the clone is safe to read concurrently while
// the original keeps changing, and vice versa.
func (t *Table) Clone() *Table {
	t.mu.RLock()
	defer t.mu.RUnlock()
	cp := &Table{
		sch:     t.sch,
		rows:    make(map[int64]*schema.Tuple, len(t.rows)),
		order:   append([]int64(nil), t.order...),
		nextID:  t.nextID,
		indexes: make(map[string]*hashIndex, len(t.indexes)),
	}
	for id, tu := range t.rows {
		cp.rows[id] = tu
	}
	for k, idx := range t.indexes {
		cp.indexes[k] = idx.clone()
	}
	return cp
}

// Scan calls fn on a copy of every row in insertion order; fn returning
// false stops the scan.
func (t *Table) Scan(fn func(*schema.Tuple) bool) {
	t.mu.RLock()
	ids := append([]int64(nil), t.order...)
	t.mu.RUnlock()
	for _, id := range ids {
		t.mu.RLock()
		tu, ok := t.rows[id]
		var cp *schema.Tuple
		if ok {
			cp = tu.Clone()
		}
		t.mu.RUnlock()
		if ok && !fn(cp) {
			return
		}
	}
}

// Select returns copies of all rows satisfying pred, in insertion
// order. A nil predicate selects everything.
func (t *Table) Select(pred func(*schema.Tuple) bool) []*schema.Tuple {
	var out []*schema.Tuple
	t.Scan(func(tu *schema.Tuple) bool {
		if pred == nil || pred(tu) {
			out = append(out, tu)
		}
		return true
	})
	return out
}

// All returns copies of every row in insertion order.
func (t *Table) All() []*schema.Tuple { return t.Select(nil) }

// indexKey canonicalizes an attribute list for the index registry.
func indexKey(attrs []string) string {
	cp := append([]string(nil), attrs...)
	sort.Strings(cp)
	var b []byte
	for _, a := range cp {
		b = append(b, byte(len(a)))
		b = append(b, a...)
	}
	return string(b)
}

// hashIndex maps composite attribute values to row IDs.
type hashIndex struct {
	attrs   []string // sorted
	buckets map[string][]int64
}

func (ix *hashIndex) keyOf(tu *schema.Tuple) string {
	return tu.Project(ix.attrs).Key()
}

func (ix *hashIndex) add(tu *schema.Tuple) {
	k := ix.keyOf(tu)
	ix.buckets[k] = append(ix.buckets[k], tu.ID)
}

func (ix *hashIndex) clone() *hashIndex {
	cp := &hashIndex{attrs: ix.attrs, buckets: make(map[string][]int64, len(ix.buckets))}
	for k, ids := range ix.buckets {
		cp.buckets[k] = append([]int64(nil), ids...)
	}
	return cp
}

func (ix *hashIndex) remove(tu *schema.Tuple) {
	k := ix.keyOf(tu)
	ids := ix.buckets[k]
	for i, id := range ids {
		if id == tu.ID {
			ix.buckets[k] = append(ids[:i], ids[i+1:]...)
			break
		}
	}
	if len(ix.buckets[k]) == 0 {
		delete(ix.buckets, k)
	}
}

// CreateIndex builds (or reuses) a hash index over the attribute list.
// Index lookups then serve LookupEq in O(1) expected time.
func (t *Table) CreateIndex(attrs []string) error {
	for _, a := range attrs {
		if !t.sch.Has(a) {
			return fmt.Errorf("storage: index attribute %q not in schema %s", a, t.sch.Name())
		}
	}
	key := indexKey(attrs)
	t.mu.Lock()
	defer t.mu.Unlock()
	if _, ok := t.indexes[key]; ok {
		return nil
	}
	sorted := append([]string(nil), attrs...)
	sort.Strings(sorted)
	idx := &hashIndex{attrs: sorted, buckets: make(map[string][]int64)}
	for _, id := range t.order {
		idx.add(t.rows[id])
	}
	t.indexes[key] = idx
	return nil
}

// HasIndex reports whether an index over exactly these attributes
// exists (order-insensitive).
func (t *Table) HasIndex(attrs []string) bool {
	t.mu.RLock()
	defer t.mu.RUnlock()
	_, ok := t.indexes[indexKey(attrs)]
	return ok
}

// LookupEq returns copies of all rows whose attrs project to key. It
// uses a matching hash index when one exists and falls back to a scan
// otherwise (the E5 benchmark's indexed-vs-scan ablation toggles
// exactly this).
func (t *Table) LookupEq(attrs []string, key value.List) []*schema.Tuple {
	if len(attrs) != len(key) {
		return nil
	}
	t.mu.RLock()
	idx, ok := t.indexes[indexKey(attrs)]
	if ok {
		// Project the probe into the index's canonical attribute order.
		sorted := append([]string(nil), attrs...)
		sort.Strings(sorted)
		probe := make(value.List, len(sorted))
		for i, a := range sorted {
			for j, orig := range attrs {
				if orig == a {
					probe[i] = key[j]
					break
				}
			}
		}
		ids := append([]int64(nil), idx.buckets[probe.Key()]...)
		out := make([]*schema.Tuple, 0, len(ids))
		for _, id := range ids {
			if tu, live := t.rows[id]; live {
				out = append(out, tu.Clone())
			}
		}
		t.mu.RUnlock()
		return out
	}
	t.mu.RUnlock()
	return t.Select(func(tu *schema.Tuple) bool {
		return tu.Project(attrs).Equal(key)
	})
}
