package server

import (
	"fmt"
	"net/http"
	"sync"
	"testing"

	"cerfix/internal/dataset"
)

func TestBatchFix(t *testing.T) {
	ts := demoServer(t)
	var resp batchResponse
	doJSON(t, "POST", ts.URL+"/api/fix", map[string]any{
		"validated": []string{"zip", "phn", "type", "item"},
		"tuples": []map[string]string{
			dataset.DemoInputFig3().Map(),
			dataset.DemoInputExample1().Map(),
		},
	}, 200, &resp)
	if len(resp.Results) != 2 {
		t.Fatalf("results = %d", len(resp.Results))
	}
	// Fig. 3 tuple: the 4 validated attributes form the mobile region —
	// fully fixed.
	r0 := resp.Results[0]
	if !r0.Done || r0.Tuple["FN"] != "Mark" || r0.Tuple["str"] != "20 Baker St" {
		t.Fatalf("result 0 = %+v", r0)
	}
	// Example 1 tuple: zip correct so AC fixed to 131.
	r1 := resp.Results[1]
	if r1.Tuple["AC"] != "131" || r1.Tuple["city"] != "Edi" {
		t.Fatalf("result 1 = %+v", r1)
	}
	if resp.FullyValidated < 1 || resp.CellsRewritten < 3 {
		t.Fatalf("aggregates = %+v", resp)
	}
	// Rewrites carry provenance.
	foundProv := false
	for _, c := range r0.Rewrites {
		if c.Attr == "FN" && c.RuleID == "phi4" {
			foundProv = true
		}
	}
	if !foundProv {
		t.Fatalf("FN rewrite provenance missing: %+v", r0.Rewrites)
	}
}

func TestBatchFixErrors(t *testing.T) {
	ts := demoServer(t)
	doJSON(t, "POST", ts.URL+"/api/fix", map[string]any{
		"validated": []string{},
		"tuples":    []map[string]string{{"FN": "x"}},
	}, 422, nil)
	doJSON(t, "POST", ts.URL+"/api/fix", map[string]any{
		"validated": []string{"zip"},
		"tuples":    []map[string]string{},
	}, 422, nil)
	doJSON(t, "POST", ts.URL+"/api/fix", map[string]any{
		"validated": []string{"bogus"},
		"tuples":    []map[string]string{{"FN": "x"}},
	}, 422, nil)
	doJSON(t, "POST", ts.URL+"/api/fix", map[string]any{
		"validated": []string{"zip"},
		"tuples":    []map[string]string{{"bogus": "x"}},
	}, 422, nil)
}

// The server is safe under concurrent mixed traffic: sessions, batch
// fixes, audits and rule reads racing on the shared system.
func TestServerConcurrentTraffic(t *testing.T) {
	ts := demoServer(t)
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 10; i++ {
				switch (g + i) % 4 {
				case 0:
					var sess sessionJSON
					doJSONq(ts.URL+"/api/sessions", map[string]any{
						"tuple": dataset.DemoInputFig3().Map(),
					}, &sess, errs)
					if sess.ID != 0 {
						doJSONq(fmt.Sprintf("%s/api/sessions/%d/validate", ts.URL, sess.ID), map[string]any{
							"assertions": map[string]string{"zip": "NW1 6XE", "phn": "075568485", "type": "2", "item": "DVD"},
						}, nil, errs)
					}
				case 1:
					doJSONq(ts.URL+"/api/fix", map[string]any{
						"validated": []string{"zip", "phn", "type", "item"},
						"tuples":    []map[string]string{dataset.DemoInputFig3().Map()},
					}, nil, errs)
				case 2:
					getq(ts.URL+"/api/audit/stats", errs)
				default:
					getq(ts.URL+"/api/rules", errs)
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

// doJSONq is doJSON without *testing.T (for goroutines).
func doJSONq(url string, body any, out any, errs chan<- error) {
	resp, err := postJSON(url, body)
	if err != nil {
		errs <- err
		return
	}
	defer resp.Body.Close()
	if resp.StatusCode >= 300 {
		errs <- fmt.Errorf("POST %s = %d", url, resp.StatusCode)
		return
	}
	if out != nil {
		if err := decodeJSONBody(resp, out); err != nil {
			errs <- err
		}
	}
}

func getq(url string, errs chan<- error) {
	resp, err := http.Get(url)
	if err != nil {
		errs <- err
		return
	}
	resp.Body.Close()
	if resp.StatusCode >= 300 {
		errs <- fmt.Errorf("GET %s = %d", url, resp.StatusCode)
	}
}

func TestSessionExplain(t *testing.T) {
	ts := demoServer(t)
	var sess sessionJSON
	doJSON(t, "POST", ts.URL+"/api/sessions", map[string]any{
		"tuple": dataset.DemoInputFig3().Map(),
	}, 201, &sess)
	doJSON(t, "POST", fmt.Sprintf("%s/api/sessions/%d/validate", ts.URL, sess.ID), map[string]any{
		"assertions": map[string]string{"AC": "201", "phn": "075568485", "type": "2", "item": "DVD"},
	}, 200, nil)
	var out struct {
		Suggestion  []string `json:"suggestion"`
		Explanation string   `json:"explanation"`
	}
	doJSON(t, "GET", fmt.Sprintf("%s/api/sessions/%d/explain", ts.URL, sess.ID), nil, 200, &out)
	if len(out.Suggestion) != 1 || out.Suggestion[0] != "zip" {
		t.Fatalf("suggestion = %v", out.Suggestion)
	}
	if out.Explanation == "" {
		t.Fatal("empty explanation")
	}
	doJSON(t, "GET", ts.URL+"/api/sessions/999/explain", nil, 404, nil)
}
