package master

import (
	"fmt"
	"testing"

	"cerfix/internal/rule"
	"cerfix/internal/value"
)

func TestLookupModeStrings(t *testing.T) {
	if ModeRuleIndex.String() != "rule-index" ||
		ModePlainIndex.String() != "plain-index" ||
		ModeScan.String() != "scan" {
		t.Fatal("mode names wrong")
	}
}

func TestSetModeAndUseIndexes(t *testing.T) {
	m := demoStore(t)
	if m.Mode() != ModeRuleIndex {
		t.Fatalf("default mode = %v", m.Mode())
	}
	m.SetUseIndexes(false)
	if m.Mode() != ModeScan {
		t.Fatal("SetUseIndexes(false) != scan")
	}
	m.SetUseIndexes(true)
	if m.Mode() != ModeRuleIndex {
		t.Fatal("SetUseIndexes(true) != rule-index")
	}
	m.SetMode(ModePlainIndex)
	if m.Mode() != ModePlainIndex {
		t.Fatal("SetMode lost")
	}
}

// All three access paths must return identical UniqueRHS results.
func TestModesAgree(t *testing.T) {
	m := demoStore(t)
	rs := rule.MustSet(
		mustParse(t, `r1: match zip~zip set AC := AC`),
		mustParse(t, `r2: match zip~zip set Hphn := Hphn`),
	)
	if err := m.PrepareForRules(rs); err != nil {
		t.Fatal(err)
	}
	keys := []value.List{{"EH8 4AH"}, {"NW1 6XE"}, {"nothing"}}
	rhsSets := [][]string{{"AC"}, {"Hphn"}}
	for _, key := range keys {
		for _, rhs := range rhsSets {
			var got []string
			var statuses []LookupStatus
			for _, mode := range []LookupMode{ModeRuleIndex, ModePlainIndex, ModeScan} {
				m.SetMode(mode)
				vals, _, st := m.UniqueRHS([]string{"zip"}, key, rhs)
				got = append(got, fmt.Sprint(vals))
				statuses = append(statuses, st)
			}
			if got[0] != got[1] || got[1] != got[2] {
				t.Fatalf("key %v rhs %v: values diverge across modes: %v", key, rhs, got)
			}
			if statuses[0] != statuses[1] || statuses[1] != statuses[2] {
				t.Fatalf("key %v rhs %v: statuses diverge: %v", key, rhs, statuses)
			}
		}
	}
}

// The rule index is maintained incrementally on inserts.
func TestRuleIndexIncrementalInsert(t *testing.T) {
	m := demoStore(t)
	rs := rule.MustSet(mustParse(t, `r1: match zip~zip set AC := AC`))
	if err := m.PrepareForRules(rs); err != nil {
		t.Fatal(err)
	}
	// New zip appears after index build.
	if _, err := m.InsertValues("New", "Person", "999", "1", "2", "3", "4", "ZZ9 9ZZ"); err != nil {
		t.Fatal(err)
	}
	rhs, _, st := m.UniqueRHS([]string{"zip"}, value.List{"ZZ9 9ZZ"}, []string{"AC"})
	if st != Unique || rhs[0] != "999" {
		t.Fatalf("incremental insert missed: %v %v", rhs, st)
	}
	// A conflicting insert flips the key to Conflict.
	if _, err := m.InsertValues("Other", "Person", "888", "1", "2", "3", "4", "ZZ9 9ZZ"); err != nil {
		t.Fatal(err)
	}
	_, _, st = m.UniqueRHS([]string{"zip"}, value.List{"ZZ9 9ZZ"}, []string{"AC"})
	if st != Conflict {
		t.Fatalf("conflict not detected incrementally: %v", st)
	}
}

// An unregistered (ad-hoc) pair falls back to the group path.
func TestRuleIndexFallback(t *testing.T) {
	m := demoStore(t)
	// No PrepareForRules at all: mode is rule-index but nothing is
	// registered.
	rhs, _, st := m.UniqueRHS([]string{"zip"}, value.List{"EH8 4AH"}, []string{"AC"})
	if st != Unique || rhs[0] != "131" {
		t.Fatalf("fallback path broken: %v %v", rhs, st)
	}
}

func TestRegisteredRuleIndexes(t *testing.T) {
	m := demoStore(t)
	rs := rule.MustSet(
		mustParse(t, `r1: match zip~zip set AC := AC`),
		mustParse(t, `r2: match AC~AC set city := city`),
	)
	if err := m.PrepareForRules(rs); err != nil {
		t.Fatal(err)
	}
	regs := m.RegisteredRuleIndexes()
	if len(regs) != 2 {
		t.Fatalf("registered = %v", regs)
	}
	if regs[0] != "AC->city" || regs[1] != "zip->AC" {
		t.Fatalf("registered = %v", regs)
	}
}

// Rebuilding after bulk table mutation reflects the new rows.
func TestPrepareRuleIndexesRebuild(t *testing.T) {
	m := demoStore(t)
	rs := rule.MustSet(mustParse(t, `r1: match zip~zip set AC := AC`))
	if err := m.PrepareForRules(rs); err != nil {
		t.Fatal(err)
	}
	// Bypass the Store: write to the table directly (as CSV bulk load
	// does), then rebuild.
	if _, err := m.Table().InsertValues("Bulk", "Row", "777", "1", "2", "3", "4", "BULK1"); err != nil {
		t.Fatal(err)
	}
	// Before rebuild the rule index does not know the key: NoMatch on
	// the index, which is authoritative for registered pairs.
	_, _, st := m.UniqueRHS([]string{"zip"}, value.List{"BULK1"}, []string{"AC"})
	if st != NoMatch {
		t.Fatalf("stale index returned %v", st)
	}
	m.PrepareRuleIndexes(rs)
	rhs, _, st := m.UniqueRHS([]string{"zip"}, value.List{"BULK1"}, []string{"AC"})
	if st != Unique || rhs[0] != "777" {
		t.Fatalf("rebuild missed: %v %v", rhs, st)
	}
}
