package cfd

import (
	"strings"
	"testing"

	"cerfix/internal/core"
	"cerfix/internal/dataset"
	"cerfix/internal/master"
	"cerfix/internal/rule"
	"cerfix/internal/schema"
	"cerfix/internal/storage"
	"cerfix/internal/value"
)

// Example1CFDs are ψ1 and ψ2 from the paper's Example 1.
const example1CFDs = `
psi1: AC = "020" -> city = "Ldn"
psi2: AC = "131" -> city = "Edi"
`

func mustParseSet(t *testing.T, src string) []*CFD {
	t.Helper()
	cs, err := ParseSet(src)
	if err != nil {
		t.Fatal(err)
	}
	return cs
}

func TestParseConstantCFD(t *testing.T) {
	c, err := Parse(`psi1: AC = "020" -> city = "Ldn"`)
	if err != nil {
		t.Fatal(err)
	}
	if c.ID != "psi1" || !c.IsConstant() {
		t.Fatalf("parsed = %+v", c)
	}
	if len(c.LHS) != 1 || !c.LHS[0].IsConst() || *c.LHS[0].Const != "020" {
		t.Fatalf("LHS = %+v", c.LHS)
	}
	if c.RHS[0].Attr != "city" || *c.RHS[0].Const != "Ldn" {
		t.Fatalf("RHS = %+v", c.RHS)
	}
}

func TestParseVariableCFD(t *testing.T) {
	c, err := Parse(`fd1: zip -> city, str`)
	if err != nil {
		t.Fatal(err)
	}
	if c.IsConstant() {
		t.Fatal("variable CFD reported constant")
	}
	if len(c.RHS) != 2 || c.RHS[1].Attr != "str" {
		t.Fatalf("RHS = %+v", c.RHS)
	}
}

func TestParseMixedCFD(t *testing.T) {
	c, err := Parse(`mix: country = "44", zip -> city`)
	if err != nil {
		t.Fatal(err)
	}
	if len(c.LHS) != 2 || !c.LHS[0].IsConst() || c.LHS[1].IsConst() {
		t.Fatalf("LHS = %+v", c.LHS)
	}
}

func TestParseWildcardUnderscore(t *testing.T) {
	c, err := Parse(`w: zip = _ -> city`)
	if err != nil {
		t.Fatal(err)
	}
	if c.LHS[0].IsConst() {
		t.Fatal("underscore treated as constant")
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		``,
		`noarrow: a, b`,
		`: a -> b`,
		`x: -> b`,
		`x: a ->`,
		`x: a -> b = "unterminated`,
		`bad id: a -> b`,
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) accepted", src)
		}
	}
	if _, err := ParseSet("a: x -> y\na: x -> y\n"); err == nil {
		t.Error("duplicate ids accepted")
	}
}

func TestStringRoundTrip(t *testing.T) {
	for _, src := range []string{
		`psi1: AC = "020" -> city = "Ldn"`,
		`fd1: zip -> city, str`,
	} {
		c, err := Parse(src)
		if err != nil {
			t.Fatal(err)
		}
		c2, err := Parse(c.String())
		if err != nil {
			t.Fatalf("reparse %q: %v", c.String(), err)
		}
		if c2.String() != c.String() {
			t.Fatalf("round trip: %q vs %q", c.String(), c2.String())
		}
	}
}

func TestValidate(t *testing.T) {
	sch := dataset.CustSchema()
	good := mustParseSet(t, example1CFDs)
	for _, c := range good {
		if err := c.Validate(sch); err != nil {
			t.Fatal(err)
		}
	}
	bad, _ := Parse(`x: bogus -> city`)
	if err := bad.Validate(sch); err == nil {
		t.Error("unknown attribute accepted")
	}
	both, _ := Parse(`x: city -> city`)
	if err := both.Validate(sch); err == nil {
		t.Error("attr on both sides accepted")
	}
	dup, _ := Parse(`x: zip -> city, city`)
	if err := dup.Validate(sch); err == nil {
		t.Error("duplicate RHS accepted")
	}
}

// Example 1: the CFDs detect that t[AC, city] = (020, Edi) is
// inconsistent — but they cannot say which attribute is wrong.
func TestCheckTupleExample1(t *testing.T) {
	cfds := mustParseSet(t, example1CFDs)
	tu := dataset.DemoInputExample1() // AC=020, city=Edi
	vs := CheckTuple(cfds, tu)
	if len(vs) != 1 {
		t.Fatalf("violations = %v", vs)
	}
	v := vs[0]
	if v.CFDID != "psi1" || v.Attr != "city" || v.Want != "Ldn" || v.Got != "Edi" {
		t.Fatalf("violation = %+v", v)
	}
	if !strings.Contains(v.String(), "psi1") {
		t.Errorf("String = %q", v.String())
	}
	// The corrected tuple (AC=131) satisfies ψ2: no violations.
	fixed := tu.Clone()
	fixed.Set("AC", "131")
	if vs := CheckTuple(cfds, fixed); len(vs) != 0 {
		t.Fatalf("clean tuple flagged: %v", vs)
	}
}

func TestCheckTableVariableCFD(t *testing.T) {
	sch := schema.MustNew("R", schema.Str("zip"), schema.Str("city"))
	tbl := storage.NewTable(sch)
	mustInsert := func(vals ...value.V) {
		t.Helper()
		if _, err := tbl.InsertValues(vals...); err != nil {
			t.Fatal(err)
		}
	}
	mustInsert("Z1", "Edi")
	mustInsert("Z1", "Ldn") // violates zip -> city
	mustInsert("Z2", "Mnc")
	mustInsert("Z2", "Mnc")
	cfds := mustParseSet(t, "fd: zip -> city")
	vs := CheckTable(cfds, tbl)
	if len(vs) != 1 {
		t.Fatalf("violations = %v", vs)
	}
	if vs[0].TupleB == 0 {
		t.Fatal("pair violation missing second witness")
	}
	if !strings.Contains(vs[0].String(), "agree on LHS") {
		t.Errorf("String = %q", vs[0].String())
	}
}

// The heuristic baseline resolves Example 1 by rewriting city to Ldn —
// "repairing" the tuple into a state that satisfies the CFDs while
// both breaking the correct city and keeping the wrong AC. This is the
// paper's core motivating failure.
func TestRepairTupleReproducesExample1Failure(t *testing.T) {
	cfds := mustParseSet(t, example1CFDs)
	rep := NewRepairer(cfds)
	fixed, changed := rep.RepairTuple(dataset.DemoInputExample1())
	if changed == 0 {
		t.Fatal("baseline changed nothing")
	}
	if fixed.Get("city") != "Ldn" {
		t.Fatalf("city = %q, expected the heuristic to force Ldn", fixed.Get("city"))
	}
	if fixed.Get("AC") != "020" {
		t.Fatalf("AC = %q, heuristic should not have touched it", fixed.Get("AC"))
	}
	// The result satisfies the CFDs — dirty data "repaired" wrong.
	if vs := CheckTuple(cfds, fixed); len(vs) != 0 {
		t.Fatalf("violations remain: %v", vs)
	}
}

func TestRepairTableConstant(t *testing.T) {
	sch := dataset.CustSchema()
	tbl := storage.NewTable(sch)
	if _, err := tbl.Insert(dataset.DemoInputExample1()); err != nil {
		t.Fatal(err)
	}
	cfds := mustParseSet(t, example1CFDs)
	stats := NewRepairer(cfds).RepairTable(tbl)
	if stats.CellsChanged == 0 {
		t.Fatal("no repairs made")
	}
	if stats.Remaining != 0 {
		t.Fatalf("remaining = %d", stats.Remaining)
	}
	got := tbl.All()[0]
	if got.Get("city") != "Ldn" {
		t.Fatalf("city = %q", got.Get("city"))
	}
}

func TestRepairTableVariablePlurality(t *testing.T) {
	sch := schema.MustNew("R", schema.Str("zip"), schema.Str("city"))
	tbl := storage.NewTable(sch)
	for _, city := range []value.V{"Edi", "Edi", "Edj"} {
		if _, err := tbl.InsertValues("Z1", city); err != nil {
			t.Fatal(err)
		}
	}
	cfds := mustParseSet(t, "fd: zip -> city")
	stats := NewRepairer(cfds).RepairTable(tbl)
	if stats.CellsChanged != 1 {
		t.Fatalf("changed = %d", stats.CellsChanged)
	}
	for _, tu := range tbl.All() {
		if tu.Get("city") != "Edi" {
			t.Fatalf("plurality not enforced: %v", tu)
		}
	}
	if stats.Remaining != 0 {
		t.Fatalf("remaining = %d", stats.Remaining)
	}
}

func TestPluralityTieBreakByCost(t *testing.T) {
	sch := schema.MustNew("R", schema.Str("k"), schema.Str("v"))
	group := []*schema.Tuple{
		schema.MustTuple(sch, "K", "abc"),
		schema.MustTuple(sch, "K", "abd"),
	}
	// Tie 1-1; costs equal (distance 1 both ways): lexicographic wins.
	got := pluralityValue(group, "v")
	if got != "abc" {
		t.Fatalf("tie break = %q", got)
	}
}

// Deriving eRs from the demo CFDs yields rules that, with master data,
// produce correct fixes where the bare CFDs could not.
func TestDeriveRules(t *testing.T) {
	sch := dataset.CustSchema()
	cfds := mustParseSet(t, "fdzip: zip -> city, str")
	rules, err := DeriveRules(cfds, sch)
	if err != nil {
		t.Fatal(err)
	}
	if len(rules) != 1 {
		t.Fatalf("rules = %d", len(rules))
	}
	r := rules[0]
	if r.ID != "er_fdzip" {
		t.Fatalf("ID = %q", r.ID)
	}
	if len(r.Match) != 1 || r.Match[0].Input != "zip" || len(r.Set) != 2 {
		t.Fatalf("rule = %v", r)
	}
	if !strings.Contains(r.Comment, "derived from cfd") {
		t.Errorf("Comment = %q", r.Comment)
	}
}

func TestDeriveRulesConstantPattern(t *testing.T) {
	sch := dataset.CustSchema()
	cfds := mustParseSet(t, `c: type = "1", AC -> city`)
	rules, err := DeriveRules(cfds, sch)
	if err != nil {
		t.Fatal(err)
	}
	r := rules[0]
	if len(r.When.Conds) != 1 || r.When.Conds[0].Attr != "type" {
		t.Fatalf("pattern = %v", r.When)
	}
	if len(r.Match) != 2 {
		t.Fatalf("match = %v", r.Match)
	}
}

func TestDeriveRulesValidateError(t *testing.T) {
	sch := dataset.CustSchema()
	bad, _ := Parse(`x: bogus -> city`)
	if _, err := DeriveRules([]*CFD{bad}, sch); err == nil {
		t.Fatal("invalid cfd derived")
	}
}

// End to end: derived rules run through the engine and fix Example 1
// correctly (AC := 131) — the contrast with the heuristic baseline.
func TestDerivedRulesFixExample1Correctly(t *testing.T) {
	// Same-schema master: the CUST projection of the demo person rows.
	sch := dataset.CustSchema()
	st := master.New(sch)
	if _, err := st.InsertValues("Robert", "Brady", "131", "079172485", "2", "501 Elm St", "Edi", "EH8 4AH", "CD"); err != nil {
		t.Fatal(err)
	}
	cfds := mustParseSet(t, "fdzip: zip -> AC, city, str")
	derived, err := DeriveRules(cfds, sch)
	if err != nil {
		t.Fatal(err)
	}
	rs, err := rule.NewSet(derived...)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := core.NewEngine(sch, rs, st)
	if err != nil {
		t.Fatal(err)
	}
	res := eng.Chase(dataset.DemoInputExample1(), schema.SetOfNames(sch, "zip"))
	if res.Tuple.Get("AC") != "131" {
		t.Fatalf("AC = %q", res.Tuple.Get("AC"))
	}
	if res.Tuple.Get("city") != "Edi" {
		t.Fatalf("city = %q — derived rules must not break correct values", res.Tuple.Get("city"))
	}
}
