package core

import (
	"fmt"
	"testing"

	"cerfix/internal/master"
	"cerfix/internal/pattern"
	"cerfix/internal/rule"
	"cerfix/internal/schema"
	"cerfix/internal/value"
)

// The premise prefilter may only skip rules the agenda would have
// evaluated to no-fire: this suite pins that — a randomized
// prefilter-on vs prefilter-off vs legacy-oracle sweep, plus crafted
// worlds proving the skips actually happen (and don't happen where
// stability doesn't hold).

// TestPrefilterOnOffParityRandom sweeps random worlds under every
// lookup mode comparing three executions of each chase: prefilter on,
// prefilter off, and the legacy oracle. Results must be byte-identical
// and the counters must reconcile: every premise-ready rule is either
// evaluated or skipped, and the off run evaluates exactly the union.
func TestPrefilterOnOffParityRandom(t *testing.T) {
	modes := []master.LookupMode{master.ModeRuleIndex, master.ModePlainIndex, master.ModeScan}
	for trial := uint64(0); trial < 40; trial++ {
		w := newRandomWorld(t, 5000+trial)
		w.eng.Master().SetMode(modes[trial%3])
		on := w.eng.NewChaser()
		off := w.eng.NewChaser()
		off.SetPrefilter(false)
		for i, in := range w.inputs {
			seed := schema.EmptySet
			for p := 0; p < w.eng.InputSchema().Len(); p++ {
				if w.rng.Bool(0.45) {
					seed = seed.With(p)
				}
			}
			label := fmt.Sprintf("trial %d tuple %d seed %v", trial, i, seed)
			want := w.eng.ChaseLegacy(in, seed)
			got := on.Chase(in, seed)
			raw := off.Chase(in, seed)
			assertSameResult(t, label+" [prefilter on]", got, want)
			assertSameResult(t, label+" [prefilter off]", raw, want)
			if raw.Stats.RulesSkipped != 0 {
				t.Fatalf("%s: prefilter-off chase reports %d skips", label, raw.Stats.RulesSkipped)
			}
			if raw.Stats.RulesEvaluated != got.Stats.RulesEvaluated+got.Stats.RulesSkipped {
				t.Fatalf("%s: counters don't reconcile: off evaluated %d, on evaluated %d + skipped %d",
					label, raw.Stats.RulesEvaluated, got.Stats.RulesEvaluated, got.Stats.RulesSkipped)
			}
		}
	}
}

// prefilterEngine is a tiny crafted world: r0 fixes a1 from a0 gated
// on a0 = "go", r1 fixes a2 from a0 unconditionally. Master knows the
// a0 values "go" and "stop" and nothing else.
func prefilterEngine(t *testing.T) (*Engine, *schema.Schema) {
	t.Helper()
	input := schema.MustNew("IN", schema.Str("a0"), schema.Str("a1"), schema.Str("a2"))
	msch := schema.MustNew("MD", schema.Str("m0"), schema.Str("m1"), schema.Str("m2"))
	st := master.New(msch)
	for _, row := range [][]string{{"go", "x", "y"}, {"stop", "x2", "y2"}} {
		if _, err := st.InsertValues(value.V(row[0]), value.V(row[1]), value.V(row[2])); err != nil {
			t.Fatal(err)
		}
	}
	rs, err := rule.NewSet(
		&rule.Rule{
			ID:    "r0",
			Match: []rule.Correspondence{{Input: "a0", Master: "m0"}},
			Set:   []rule.Correspondence{{Input: "a1", Master: "m1"}},
			When:  pattern.NewPattern(pattern.Eq("a0", value.V("go"))),
		},
		&rule.Rule{
			ID:    "r1",
			Match: []rule.Correspondence{{Input: "a0", Master: "m0"}},
			Set:   []rule.Correspondence{{Input: "a2", Master: "m2"}},
		},
	)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := NewEngine(input, rs, st)
	if err != nil {
		t.Fatal(err)
	}
	return eng, input
}

// TestPrefilterSkips proves the two per-tuple reject paths fire: a
// failing pattern condition on a stable attribute, and a match-key
// value the master dictionary has never seen.
func TestPrefilterSkips(t *testing.T) {
	eng, input := prefilterEngine(t)
	ch := eng.NewChaser()
	seed := schema.SetOf(0) // a0 validated: stable

	// a0 = "stop": r0's condition fails (cond reject), r1 matches the
	// master row and fixes a2.
	in := &schema.Tuple{Schema: input, Vals: value.List{value.V("stop"), value.V(""), value.V("")}}
	res := ch.Chase(in, seed)
	assertSameResult(t, "cond reject", res, eng.ChaseLegacy(in, seed))
	if res.Stats.RulesSkipped != 1 || res.Stats.RulesEvaluated != 1 {
		t.Fatalf("cond reject: stats %+v, want 1 skipped / 1 evaluated", res.Stats)
	}
	if got := string(res.Tuple.Vals[2]); got != "y2" {
		t.Fatalf("cond reject: a2 = %q, want fixed to %q", got, "y2")
	}

	// a0 = "unknown": absent from the master dictionary, so both rules'
	// probes must return NoMatch — the whole match mask skips (r0 also
	// fails its condition; causes overlap, the rule skips once).
	in = &schema.Tuple{Schema: input, Vals: value.List{value.V("unknown"), value.V(""), value.V("")}}
	res = ch.Chase(in, seed)
	assertSameResult(t, "dict miss", res, eng.ChaseLegacy(in, seed))
	if res.Stats.RulesSkipped != 2 || res.Stats.RulesEvaluated != 0 {
		t.Fatalf("dict miss: stats %+v, want 2 skipped / 0 evaluated", res.Stats)
	}

	// Program-lifetime totals aggregate across both chases.
	skipped, evaluated := eng.PrefilterStats()
	if skipped != 3 || evaluated != 1 {
		t.Fatalf("PrefilterStats() = (%d, %d), want (3, 1)", skipped, evaluated)
	}
}

// TestPrefilterUnstableAttrNotFiltered pins the stability rule: a
// condition (or match key) on an attribute some rule can still write
// must not prefilter, because the value the agenda will see isn't the
// seed value. Here r1's gate on a1 fails at seed time but passes after
// r0 rewrites a1 — the chain must still complete.
func TestPrefilterUnstableAttrNotFiltered(t *testing.T) {
	input := schema.MustNew("IN", schema.Str("a0"), schema.Str("a1"), schema.Str("a2"))
	msch := schema.MustNew("MD", schema.Str("m0"), schema.Str("m1"), schema.Str("m2"))
	st := master.New(msch)
	if _, err := st.InsertValues(value.V("go"), value.V("x"), value.V("y")); err != nil {
		t.Fatal(err)
	}
	rs, err := rule.NewSet(
		&rule.Rule{
			ID:    "r0",
			Match: []rule.Correspondence{{Input: "a0", Master: "m0"}},
			Set:   []rule.Correspondence{{Input: "a1", Master: "m1"}},
		},
		&rule.Rule{
			ID:    "r1",
			Match: []rule.Correspondence{{Input: "a1", Master: "m1"}},
			Set:   []rule.Correspondence{{Input: "a2", Master: "m2"}},
			When:  pattern.NewPattern(pattern.Eq("a1", value.V("x"))),
		},
	)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := NewEngine(input, rs, st)
	if err != nil {
		t.Fatal(err)
	}
	// "WRONG" fails r1's gate and is absent from the dictionary — both
	// reject paths would fire if stability were ignored.
	in := &schema.Tuple{Schema: input, Vals: value.List{value.V("go"), value.V("WRONG"), value.V("")}}
	seed := schema.SetOf(0)
	res := eng.Chase(in, seed)
	assertSameResult(t, "unstable chain", res, eng.ChaseLegacy(in, seed))
	if got := string(res.Tuple.Vals[2]); got != "y" {
		t.Fatalf("a2 = %q, want %q via the a1 chain", got, "y")
	}
	if res.Stats.RulesSkipped != 0 {
		t.Fatalf("stats %+v: skipped a rule on an unstable attribute", res.Stats)
	}
}

// TestPrefilterPoolReset pins that Release drops a SetPrefilter(false)
// override: a pooled chaser always comes back filtered.
func TestPrefilterPoolReset(t *testing.T) {
	eng, _ := prefilterEngine(t)
	c := eng.AcquireChaser()
	c.SetPrefilter(false)
	c.Release()
	c = eng.AcquireChaser()
	defer c.Release()
	if c.noPrefilter {
		t.Fatal("pooled chaser kept the prefilter disabled across Release")
	}
}
