package rule

import (
	"strings"
	"testing"
	"testing/quick"

	"cerfix/internal/pattern"
	"cerfix/internal/value"
)

// The parser must never panic, whatever bytes arrive (data-entry tools
// feed it user text). testing/quick generates adversarial strings.
func TestParseNeverPanics(t *testing.T) {
	f := func(s string) bool {
		defer func() {
			if r := recover(); r != nil {
				t.Fatalf("Parse(%q) panicked: %v", s, r)
			}
		}()
		_, _ = Parse(s)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Error(err)
	}
}

func TestParseSetNeverPanics(t *testing.T) {
	f := func(s string) bool {
		defer func() {
			if r := recover(); r != nil {
				t.Fatalf("ParseSet(%q) panicked: %v", s, r)
			}
		}()
		_, _ = ParseSet(s)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// Structured fuzz: assemble rules from random fragments; whatever
// parses must re-parse from its String form to the same String
// (print/parse is a projection-idempotent pair).
func TestParsePrintFixpoint(t *testing.T) {
	idents := []string{"a", "zip", "AC", "phn", "x1"}
	ops := []string{"=", "!=", "<", "<=", ">", ">="}
	f := func(seed uint32) bool {
		pick := func(n uint32, items []string) string { return items[int(n)%len(items)] }
		src := pick(seed, idents) + "_id: match " +
			pick(seed>>2, idents) + "~" + pick(seed>>4, idents) +
			" set " + pick(seed>>6, idents) + " := " + pick(seed>>8, idents)
		if seed%3 == 0 {
			src += " when " + pick(seed>>10, idents) + " " + pick(seed>>12, ops) + " \"v\""
		}
		r1, err := Parse(src)
		if err != nil {
			return true // not all assemblies are valid (dup targets etc.)
		}
		r2, err := Parse(r1.String())
		if err != nil {
			t.Fatalf("re-parse of %q failed: %v", r1.String(), err)
		}
		return r1.String() == r2.String()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 3000}); err != nil {
		t.Error(err)
	}
}

// Patterns with every operator survive the print/parse fixpoint.
func TestAllOperatorsRoundTrip(t *testing.T) {
	r := &Rule{
		ID:    "all",
		Match: []Correspondence{{"zip", "zip"}},
		Set:   []Correspondence{{"AC", "AC"}},
		When: pattern.NewPattern(
			pattern.Eq("a", "1"),
			pattern.Ne("b", "2"),
			pattern.Lt("c", "3"),
			pattern.Le("d", "4"),
			pattern.Gt("e", "5"),
			pattern.Ge("f", "6"),
			pattern.In("g", value.V("x"), value.V("y")),
			pattern.Any("h"),
		),
	}
	parsed, err := Parse(r.String())
	if err != nil {
		t.Fatalf("Parse(%q): %v", r.String(), err)
	}
	if parsed.String() != r.String() {
		t.Fatalf("fixpoint violated:\n%s\n%s", r.String(), parsed.String())
	}
	if len(parsed.When.Conds) != 8 {
		t.Fatalf("conds = %d", len(parsed.When.Conds))
	}
}

// Values containing DSL metacharacters survive when quoted.
func TestQuotedMetacharacters(t *testing.T) {
	for _, v := range []string{"a b", "x:=y", "p~q", "in {z}", "# not a comment", "EH8 4AH"} {
		src := `r: match zip~zip set AC := AC when city = "` + v + `"`
		r, err := Parse(src)
		if err != nil {
			t.Fatalf("Parse with %q: %v", v, err)
		}
		if got := string(r.When.Conds[0].Const); got != v {
			t.Fatalf("constant %q mangled to %q", v, got)
		}
		if !strings.Contains(r.String(), v) {
			t.Fatalf("String lost %q: %s", v, r.String())
		}
	}
}
