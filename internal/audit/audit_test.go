package audit

import (
	"bytes"
	"strings"
	"sync"
	"testing"

	"cerfix/internal/core"
)

func TestRecordUserAndChanges(t *testing.T) {
	l := NewLog()
	l.RecordUser(1, "zip", "EH8", "EH8 4AH")
	l.RecordChanges(1, []core.Change{
		{Attr: "AC", Old: "020", New: "131", Source: core.SourceRule, RuleID: "phi1", MasterID: 7, Round: 1},
		{Attr: "city", Old: "Edi", New: "Edi", Source: core.SourceRule, RuleID: "phi3", MasterID: 7, Round: 1},
	})
	if l.Len() != 3 {
		t.Fatalf("Len = %d", l.Len())
	}
	all := l.All()
	if all[0].Seq != 1 || all[2].Seq != 3 {
		t.Fatalf("sequence numbers wrong: %+v", all)
	}
	if all[1].RuleID != "phi1" || all[1].MasterID != 7 {
		t.Fatalf("provenance lost: %+v", all[1])
	}
	if !all[1].IsRewrite() || all[2].IsRewrite() {
		t.Fatal("IsRewrite wrong")
	}
}

func TestHistories(t *testing.T) {
	l := NewLog()
	l.RecordUser(1, "zip", "a", "b")
	l.RecordUser(2, "zip", "c", "d")
	l.RecordUser(1, "AC", "x", "y")
	th := l.TupleHistory(1)
	if len(th) != 2 || th[0].Attr != "zip" || th[1].Attr != "AC" {
		t.Fatalf("TupleHistory = %+v", th)
	}
	ah := l.AttrHistory("zip")
	if len(ah) != 2 || ah[1].TupleID != 2 {
		t.Fatalf("AttrHistory = %+v", ah)
	}
	if h := l.TupleHistory(99); len(h) != 0 {
		t.Fatalf("phantom history: %+v", h)
	}
}

// The Fig. 4 click-through: selecting the FN cell of a tuple shows the
// latest action, the rule and the master tuple used.
func TestCellProvenance(t *testing.T) {
	l := NewLog()
	l.RecordUser(1, "FN", "M.", "M.")
	l.RecordChanges(1, []core.Change{
		{Attr: "FN", Old: "M.", New: "Mark", Source: core.SourceRule, RuleID: "phi4", MasterID: 2, Round: 1},
	})
	rec, ok := l.CellProvenance(1, "FN")
	if !ok {
		t.Fatal("provenance missing")
	}
	if rec.RuleID != "phi4" || rec.New != "Mark" {
		t.Fatalf("latest record wrong: %+v", rec)
	}
	if !strings.Contains(rec.String(), "phi4") {
		t.Errorf("String = %q", rec.String())
	}
	if _, ok := l.CellProvenance(1, "zip"); ok {
		t.Fatal("phantom provenance")
	}
}

func TestStatsPerAttr(t *testing.T) {
	l := NewLog()
	// FN: 1 user validation, 3 auto fixes, 1 auto confirmation.
	l.RecordUser(1, "FN", "a", "a")
	l.RecordChanges(2, []core.Change{{Attr: "FN", Old: "M.", New: "Mark", Source: core.SourceRule}})
	l.RecordChanges(3, []core.Change{{Attr: "FN", Old: "R.", New: "Robert", Source: core.SourceRule}})
	l.RecordChanges(4, []core.Change{{Attr: "FN", Old: "B.", New: "Bob", Source: core.SourceRule}})
	l.RecordChanges(5, []core.Change{{Attr: "FN", Old: "Ann", New: "Ann", Source: core.SourceRule}})
	stats := l.StatsPerAttr()
	if len(stats) != 1 {
		t.Fatalf("stats = %+v", stats)
	}
	fn := stats[0]
	if fn.Attr != "FN" || fn.UserValidated != 1 || fn.AutoFixed != 3 || fn.AutoConfirmed != 1 {
		t.Fatalf("FN stats = %+v", fn)
	}
	if fn.Total() != 5 {
		t.Fatalf("Total = %d", fn.Total())
	}
	if fn.UserPct() != 20 || fn.AutoPct() != 80 {
		t.Fatalf("UserPct/AutoPct = %v/%v, want the paper's 20/80", fn.UserPct(), fn.AutoPct())
	}
}

func TestStatsSortedByAttr(t *testing.T) {
	l := NewLog()
	l.RecordUser(1, "zip", "", "z")
	l.RecordUser(1, "AC", "", "a")
	l.RecordUser(1, "city", "", "c")
	stats := l.StatsPerAttr()
	if stats[0].Attr != "AC" || stats[1].Attr != "city" || stats[2].Attr != "zip" {
		t.Fatalf("not sorted: %+v", stats)
	}
}

func TestOverall(t *testing.T) {
	l := NewLog()
	l.RecordUser(1, "zip", "", "z")
	l.RecordChanges(1, []core.Change{
		{Attr: "AC", Old: "020", New: "131", Source: core.SourceRule},
		{Attr: "str", Old: "s", New: "s", Source: core.SourceRule},
		{Attr: "city", Old: "x", New: "y", Source: core.SourceRule},
	})
	o := l.Overall()
	if o.UserValidated != 1 || o.AutoFixed != 2 || o.AutoConfirmed != 1 {
		t.Fatalf("Overall = %+v", o)
	}
	if o.UserPct() != 25 || o.AutoPct() != 75 {
		t.Fatalf("percentages = %v/%v", o.UserPct(), o.AutoPct())
	}
}

func TestEmptyStats(t *testing.T) {
	l := NewLog()
	if len(l.StatsPerAttr()) != 0 {
		t.Fatal("stats on empty log")
	}
	o := l.Overall()
	if o.UserPct() != 0 || o.AutoPct() != 0 || o.Total() != 0 {
		t.Fatalf("empty overall = %+v", o)
	}
}

func TestConcurrentLogging(t *testing.T) {
	l := NewLog()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				l.RecordUser(int64(g), "zip", "a", "b")
				l.StatsPerAttr()
			}
		}(g)
	}
	wg.Wait()
	if l.Len() != 800 {
		t.Fatalf("Len = %d", l.Len())
	}
	// Sequence numbers are unique.
	seen := make(map[int]bool)
	for _, r := range l.All() {
		if seen[r.Seq] {
			t.Fatalf("duplicate seq %d", r.Seq)
		}
		seen[r.Seq] = true
	}
}

func TestUserRecordString(t *testing.T) {
	l := NewLog()
	l.RecordUser(1, "zip", "a", "b")
	s := l.All()[0].String()
	if !strings.Contains(s, "user validated") || !strings.Contains(s, "zip") {
		t.Errorf("String = %q", s)
	}
}

func TestCSVExportRoundTrip(t *testing.T) {
	l := NewLog()
	l.RecordUser(1, "zip", "EH8", "EH8 4AH")
	l.RecordChanges(1, []core.Change{
		{Attr: "AC", Old: "020", New: "131", Source: core.SourceRule, RuleID: "phi1", MasterID: 7, Round: 1},
	})
	var buf bytes.Buffer
	if err := l.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	l2 := NewLog()
	if err := l2.ReadCSV(&buf); err != nil {
		t.Fatal(err)
	}
	if l2.Len() != 2 {
		t.Fatalf("Len = %d", l2.Len())
	}
	a, b := l.All(), l2.All()
	for i := range a {
		if a[i].Attr != b[i].Attr || a[i].New != b[i].New ||
			a[i].Source != b[i].Source || a[i].RuleID != b[i].RuleID ||
			a[i].MasterID != b[i].MasterID || a[i].Round != b[i].Round {
			t.Fatalf("record %d mismatch: %+v vs %+v", i, a[i], b[i])
		}
	}
	// Stats agree after round trip.
	if l2.Overall() != l.Overall() {
		t.Fatal("stats diverged after round trip")
	}
}

func TestCSVImportErrors(t *testing.T) {
	l := NewLog()
	cases := []string{
		"",
		"wrong,header\n",
		"seq,tuple_id,attr,old,new,source,rule_id,master_id,round\nx,bad,a,o,n,user,,0,0\n",
		"seq,tuple_id,attr,old,new,source,rule_id,master_id,round\n1,1,a,o,n,user,,bad,0\n",
		"seq,tuple_id,attr,old,new,source,rule_id,master_id,round\n1,1,a,o,n,user,,0,bad\n",
	}
	for i, src := range cases {
		if err := l.ReadCSV(strings.NewReader(src)); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}
