package faultfs

import (
	"errors"
	"os"
	"path/filepath"
	"syscall"
	"testing"
	"time"
)

func TestInjectorTargetedFaults(t *testing.T) {
	dir := t.TempDir()
	in := NewInjector(OS)
	path := filepath.Join(dir, "f.txt")

	// FailNth: the second sync fails, the first succeeds.
	in.FailNth(OpSync, "f.txt", 2, syscall.ENOSPC)
	f, err := Create(in, path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("hello")); err != nil {
		t.Fatal(err)
	}
	if err := f.Sync(); err != nil {
		t.Fatalf("first sync: %v", err)
	}
	if _, err := f.Write([]byte(" world")); err != nil {
		t.Fatal(err)
	}
	if err := f.Sync(); !errors.Is(err, syscall.ENOSPC) {
		t.Fatalf("second sync = %v, want ENOSPC", err)
	}
	f.Close()

	// The trace recorded every effect op in order.
	ops := []Op{}
	for _, s := range in.Trace() {
		ops = append(ops, s.Op)
	}
	want := []Op{OpOpenFile, OpWrite, OpSync, OpWrite, OpSync}
	if len(ops) != len(want) {
		t.Fatalf("trace %v, want %v", ops, want)
	}
	for i := range want {
		if ops[i] != want[i] {
			t.Fatalf("trace %v, want %v", ops, want)
		}
	}
}

func TestInjectorShortWrite(t *testing.T) {
	dir := t.TempDir()
	in := NewInjector(OS)
	path := filepath.Join(dir, "f.txt")
	in.ShortWriteNth("f.txt", 1, 3, syscall.EIO)
	f, err := Create(in, path)
	if err != nil {
		t.Fatal(err)
	}
	n, err := f.Write([]byte("hello"))
	if n != 3 || !errors.Is(err, syscall.EIO) {
		t.Fatalf("short write = (%d, %v), want (3, EIO)", n, err)
	}
	f.Close()
	data, _ := os.ReadFile(path)
	if string(data) != "hel" {
		t.Fatalf("on disk %q, want %q", data, "hel")
	}
}

func TestInjectorCrashAndLoseUnsynced(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "f.txt")

	write := func(in *Injector) error {
		f, err := Create(in, path)
		if err != nil {
			return err
		}
		if _, err := f.Write([]byte("durable")); err != nil {
			f.Close()
			return err
		}
		if err := f.Sync(); err != nil {
			f.Close()
			return err
		}
		if _, err := f.Write([]byte(" volatile")); err != nil {
			f.Close()
			return err
		}
		return f.Close()
	}

	// Count ops, then crash after the second write (everything ran,
	// but the tail was never synced).
	count := NewInjector(OS)
	if err := write(count); err != nil {
		t.Fatal(err)
	}
	if n := count.EffectOps(); n != 4 {
		t.Fatalf("effect ops = %d, want 4 (open, write, sync, write)", n)
	}

	in := NewInjector(OS)
	in.SetCrashAt(4) // all four ops run; the crash hits afterwards
	if err := write(in); err != nil {
		t.Fatal(err)
	}
	if err := in.LoseUnsynced(0); err != nil {
		t.Fatal(err)
	}
	data, _ := os.ReadFile(path)
	if string(data) != "durable" {
		t.Fatalf("after losing unsynced bytes: %q, want %q", data, "durable")
	}

	// keep=1 preserves the torn tail ("write landed, fsync didn't").
	os.Remove(path)
	in = NewInjector(OS)
	in.SetCrashAt(4)
	if err := write(in); err != nil {
		t.Fatal(err)
	}
	if err := in.LoseUnsynced(1); err != nil {
		t.Fatal(err)
	}
	data, _ = os.ReadFile(path)
	if string(data) != "durable volatile" {
		t.Fatalf("keep=1: %q", data)
	}

	// A crash mid-trace fails that op and every later one.
	os.Remove(path)
	in = NewInjector(OS)
	in.SetCrashAt(2) // open and first write succeed; sync crashes
	err := write(in)
	if !errors.Is(err, ErrCrashed) {
		t.Fatalf("crashed run returned %v", err)
	}
	if !in.Crashed() {
		t.Fatal("Crashed() false after crash point hit")
	}
	// A created-but-never-synced file disappears with keep=0.
	if err := in.LoseUnsynced(0); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Fatalf("unsynced created file survived the crash: %v", err)
	}
}

func TestSyncDirClassification(t *testing.T) {
	// A real directory syncs fine (or the fs rejects the op, which is
	// also a nil).
	if err := OS.SyncDir(t.TempDir()); err != nil {
		t.Fatalf("SyncDir on a real dir: %v", err)
	}
	// A missing directory is a real error, not best-effort silence.
	if err := OS.SyncDir(filepath.Join(t.TempDir(), "nope")); err == nil {
		t.Fatal("SyncDir on a missing dir returned nil")
	}
}

func TestTransientClassification(t *testing.T) {
	for _, err := range []error{syscall.ENOSPC, syscall.EIO, syscall.EDQUOT} {
		if !Transient(err) {
			t.Fatalf("%v not transient", err)
		}
	}
	if Transient(errors.New("parse error")) {
		t.Fatal("permanent error classified transient")
	}
	if Transient(ErrCrashed) {
		t.Fatal("ErrCrashed must not be transient (retry loops must stop at a simulated crash)")
	}
}

func TestHealthStateMachine(t *testing.T) {
	probeOK := false
	probes := 0
	h := NewHealth(func() error {
		probes++
		if probeOK {
			return nil
		}
		return syscall.ENOSPC
	}, 5*time.Millisecond)

	if err := h.Check(); err != nil {
		t.Fatalf("healthy Check = %v", err)
	}
	h.ReportResult(syscall.ENOSPC)
	if st := h.Status(); st.State != "degraded" || st.Degradations != 1 || st.RetryAfterSeconds < 1 {
		t.Fatalf("after ENOSPC: %+v", st)
	}
	// Permanent errors do not touch health.
	h2 := NewHealth(nil, 0)
	h2.ReportResult(errors.New("bad input"))
	if st := h2.Status(); st.State != "ok" {
		t.Fatalf("permanent error degraded health: %+v", st)
	}

	// While the fault persists, Check probes (at most once per
	// interval) and keeps failing with ErrDegraded.
	if err := h.Check(); !errors.Is(err, ErrDegraded) {
		t.Fatalf("degraded Check = %v", err)
	}
	if probes != 1 {
		t.Fatalf("probes = %d, want 1", probes)
	}
	if err := h.Check(); !errors.Is(err, ErrDegraded) {
		t.Fatal("second immediate Check should fast-fail without probing")
	}
	if probes != 1 {
		t.Fatalf("immediate re-Check probed (probes=%d)", probes)
	}

	// When the fault clears, the next due probe restores healthy and
	// the triggering caller proceeds.
	probeOK = true
	deadline := time.Now().Add(2 * time.Second)
	for {
		if err := h.Check(); err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("health never recovered after probe success")
		}
		time.Sleep(time.Millisecond)
	}
	if st := h.Status(); st.State != "ok" || st.Degradations != 1 {
		t.Fatalf("after recovery: %+v", st)
	}
}

func TestHealthOnChange(t *testing.T) {
	type change struct {
		degraded bool
		reason   string
	}
	var changes []change
	h := NewHealth(nil, time.Second)
	h.SetOnChange(func(d bool, r string) { changes = append(changes, change{d, r}) })
	h.ReportResult(syscall.EIO)
	h.ReportResult(syscall.EIO) // already degraded: no second notification
	h.ReportResult(nil)
	if len(changes) != 2 || !changes[0].degraded || changes[0].reason == "" || changes[1].degraded {
		t.Fatalf("transitions = %+v", changes)
	}
}

func TestDiskProbe(t *testing.T) {
	dir := t.TempDir()
	if err := DiskProbe(OS, dir)(); err != nil {
		t.Fatalf("probe on a writable dir: %v", err)
	}
	if _, err := os.Stat(filepath.Join(dir, ".health-probe")); !os.IsNotExist(err) {
		t.Fatal("probe left its scratch file behind")
	}
	if err := DiskProbe(OS, filepath.Join(dir, "nope"))(); err == nil {
		t.Fatal("probe on a missing dir returned nil")
	}
}
