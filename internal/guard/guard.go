// Package guard is the runtime-guardrails layer: the pieces that keep
// one misbehaving request, job or tuple from taking the daemon down
// with it. Where internal/faultfs hardens the process against a
// hostile disk, guard hardens it against a hostile runtime:
//
//   - PanicError turns a recovered panic into a typed, journalable
//     failure (stack included), so job runners and pipeline workers
//     isolate panics instead of crashing the process;
//   - Watchdog cancels runs whose progress counter has stalled past a
//     deadline (watchdog.go);
//   - MemMonitor samples the heap against soft/hard watermarks with
//     hysteresis and drives memory-pressure load shedding (mem.go);
//   - the chaos seam (chaos.go) lets tests and the CI smoke inject
//     stalls and panics deterministically, faultfs-Injector style.
//
// The package is a stdlib-only leaf: everything above it — jobs,
// pipeline, server, cerfixd — may import it freely.
package guard

import (
	"errors"
	"fmt"
)

// ErrStalled marks a run cancelled by the Watchdog because its
// progress counter stopped advancing. Callers classify it with
// errors.Is on context.Cause of the cancelled context.
var ErrStalled = errors.New("guard: run stalled")

// PanicError is a recovered panic promoted to an error: the panic
// value, where it was caught, and the goroutine stack at recovery.
// It converts "one poisoned tuple kills the daemon" into "one job
// fails with a journaled stack".
type PanicError struct {
	// Where names the recovery site ("pipeline worker", "jobs runner").
	Where string
	// Value is the recovered panic value.
	Value any
	// Stack is the goroutine stack captured at the recovery point
	// (runtime/debug.Stack).
	Stack []byte
}

// NewPanicError wraps a recovered panic value and its stack.
func NewPanicError(where string, value any, stack []byte) *PanicError {
	return &PanicError{Where: where, Value: value, Stack: stack}
}

func (e *PanicError) Error() string {
	return fmt.Sprintf("%s: panic: %v", e.Where, e.Value)
}
