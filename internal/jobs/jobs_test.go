package jobs

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"testing"
	"time"

	"cerfix/internal/core"
	"cerfix/internal/dataset"
	"cerfix/internal/pipeline"
	"cerfix/internal/schema"
)

// testWorkload builds a generated CUST workload engine plus dirty
// tuples and the standard validated seed.
func testWorkload(t testing.TB, entities, inputs int) (*core.Engine, []*schema.Tuple, []string) {
	t.Helper()
	g := dataset.NewCustomerGen(7)
	w, err := g.GenerateWorkload(entities, inputs, 0.3, nil)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := core.NewEngine(dataset.CustSchema(), dataset.DemoRules(), w.Store)
	if err != nil {
		t.Fatal(err)
	}
	return eng, w.Dirty, []string{"zip", "phn", "type", "item"}
}

// waitState polls until the job reaches want (fatal on timeout or on
// reaching a different terminal state).
func waitState(t *testing.T, m *Manager, id string, want State) Job {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		j, err := m.Get(id)
		if err != nil {
			t.Fatal(err)
		}
		if j.State == want {
			return j
		}
		if j.State.Terminal() {
			t.Fatalf("job %s ended %s (error %q), want %s", id, j.State, j.Error, want)
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s stuck in %s, want %s", id, j.State, want)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// expectedArtifact renders the byte-exact results.jsonl a job over
// the given tuples must produce: the sequential chase per tuple.
func expectedArtifact(t *testing.T, eng *core.Engine, tuples []*schema.Tuple, validated []string) [][]byte {
	t.Helper()
	sch := dataset.CustSchema()
	seed := schema.SetOfNames(sch, validated...)
	var lines [][]byte
	for i, tu := range tuples {
		res := eng.Chase(tu, seed)
		rec := NewTupleResult(sch, &pipeline.Result{Seq: i, Input: tu, Fixed: res.Tuple, Chase: res})
		data, err := json.Marshal(rec)
		if err != nil {
			t.Fatal(err)
		}
		lines = append(lines, data)
	}
	return lines
}

// readArtifact returns the artifact's lines.
func readArtifact(t *testing.T, path string) [][]byte {
	t.Helper()
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	var lines [][]byte
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	for sc.Scan() {
		lines = append(lines, append([]byte(nil), sc.Bytes()...))
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return lines
}

func TestJobLifecycleInline(t *testing.T) {
	eng, dirty, validated := testWorkload(t, 30, 80)
	dir := t.TempDir()
	m, err := Open(Config{Dir: dir, Schema: dataset.CustSchema(), Snapshot: eng.Snapshot})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close(context.Background())

	tuples := make([]map[string]string, len(dirty))
	for i, tu := range dirty {
		tuples[i] = tu.Map()
	}
	j, err := m.SubmitInline(validated, tuples)
	if err != nil {
		t.Fatal(err)
	}
	if j.State != StateQueued || j.ID == "" {
		t.Fatalf("submitted job = %+v", j)
	}
	j = waitState(t, m, j.ID, StateDone)
	if j.Attempts != 1 || j.Processed != len(dirty) {
		t.Fatalf("done job = %+v", j)
	}
	if j.Stats == nil || j.Stats.Tuples != len(dirty) {
		t.Fatalf("stats = %+v", j.Stats)
	}

	path, err := m.ResultsPath(j.ID)
	if err != nil {
		t.Fatal(err)
	}
	got := readArtifact(t, path)
	want := expectedArtifact(t, eng, dirty, validated)
	if len(got) != len(want) {
		t.Fatalf("artifact has %d lines, want %d", len(got), len(want))
	}
	for i := range want {
		if string(got[i]) != string(want[i]) {
			t.Fatalf("artifact line %d:\n got %s\nwant %s", i, got[i], want[i])
		}
	}

	// The journal survived: a fresh manager lists the same terminal job.
	if err := m.Close(context.Background()); err != nil {
		t.Fatal(err)
	}
	m2, err := Open(Config{Dir: dir, Schema: dataset.CustSchema(), Snapshot: eng.Snapshot})
	if err != nil {
		t.Fatal(err)
	}
	defer m2.Close(context.Background())
	j2, err := m2.Get(j.ID)
	if err != nil {
		t.Fatal(err)
	}
	if j2.State != StateDone || j2.Processed != len(dirty) {
		t.Fatalf("reloaded job = %+v", j2)
	}
}

func TestJobSubmitFileCSV(t *testing.T) {
	eng, dirty, validated := testWorkload(t, 20, 40)
	dir := t.TempDir()

	// Write the dirty tuples as a CSV the daemon-side job will open.
	inDir := t.TempDir()
	csvPath := filepath.Join(inDir, "dirty.csv")
	f, err := os.Create(csvPath)
	if err != nil {
		t.Fatal(err)
	}
	src := pipeline.NewSliceSource(dirty)
	sink, err := pipeline.NewCSVSink(dataset.CustSchema(), f)
	if err != nil {
		t.Fatal(err)
	}
	for {
		tu, err := src.Next()
		if err != nil {
			break
		}
		if err := sink.Write(&pipeline.Result{Fixed: tu}); err != nil {
			t.Fatal(err)
		}
	}
	if err := sink.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	m, err := Open(Config{Dir: dir, Schema: dataset.CustSchema(), Snapshot: eng.Snapshot, InputRoot: inDir})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close(context.Background())
	j, err := m.SubmitFile(validated, csvPath, FormatCSV)
	if err != nil {
		t.Fatal(err)
	}
	j = waitState(t, m, j.ID, StateDone)
	if j.Processed != len(dirty) {
		t.Fatalf("processed %d, want %d", j.Processed, len(dirty))
	}

	// Paths outside the input root are refused, symlink escapes
	// included.
	outside := filepath.Join(t.TempDir(), "outside.csv")
	if err := os.WriteFile(outside, []byte("FN\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := m.SubmitFile(validated, outside, FormatCSV); err == nil {
		t.Fatal("path outside input root accepted")
	}
	link := filepath.Join(inDir, "escape.csv")
	if err := os.Symlink(outside, link); err != nil {
		t.Fatal(err)
	}
	if _, err := m.SubmitFile(validated, link, FormatCSV); err == nil {
		t.Fatal("symlink escaping input root accepted")
	}
}

// gatedSnapshot blocks job starts until released, letting tests pin a
// job in the running state.
type gatedSnapshot struct {
	eng  *core.Engine
	gate chan struct{}
}

func (g *gatedSnapshot) snapshot() *core.Engine {
	<-g.gate
	return g.eng.Snapshot()
}

// The acceptance path: jobs interrupted mid-queue and mid-run are
// journaled and re-run to completion by the next manager — the daemon
// restart story.
func TestJobRestartRecovery(t *testing.T) {
	eng, dirty, validated := testWorkload(t, 20, 50)
	dir := t.TempDir()
	gs := &gatedSnapshot{eng: eng, gate: make(chan struct{})}
	m, err := Open(Config{Dir: dir, Schema: dataset.CustSchema(), Snapshot: gs.snapshot})
	if err != nil {
		t.Fatal(err)
	}

	tuples := make([]map[string]string, len(dirty))
	for i, tu := range dirty {
		tuples[i] = tu.Map()
	}
	j1, err := m.SubmitInline(validated, tuples)
	if err != nil {
		t.Fatal(err)
	}
	j2, err := m.SubmitInline(validated, tuples[:10])
	if err != nil {
		t.Fatal(err)
	}
	// j1 occupies the worker (blocked at snapshot), j2 sits queued.
	waitState(t, m, j1.ID, StateRunning)

	// "Daemon dies": an already-expired drain context interrupts the
	// running job, which must be re-queued, not cancelled.
	expired, cancel := context.WithCancel(context.Background())
	cancel()
	closed := make(chan error, 1)
	go func() { closed <- m.Close(expired) }()
	close(gs.gate) // let the wedged snapshot return into the dead ctx
	if err := <-closed; !errors.Is(err, context.Canceled) {
		t.Fatalf("Close = %v, want context.Canceled", err)
	}
	for _, id := range []string{j1.ID, j2.ID} {
		j, err := m.Get(id)
		if err != nil {
			t.Fatal(err)
		}
		if j.State != StateQueued {
			t.Fatalf("job %s after shutdown = %s, want queued", id, j.State)
		}
	}

	// Next start: both recovered jobs run to completion.
	m2, err := Open(Config{Dir: dir, Schema: dataset.CustSchema(), Snapshot: eng.Snapshot})
	if err != nil {
		t.Fatal(err)
	}
	defer m2.Close(context.Background())
	r1 := waitState(t, m2, j1.ID, StateDone)
	r2 := waitState(t, m2, j2.ID, StateDone)
	if r1.Attempts != 2 {
		t.Fatalf("j1 attempts = %d, want 2 (interrupted + recovered)", r1.Attempts)
	}
	if r2.Processed != 10 {
		t.Fatalf("j2 processed = %d, want 10", r2.Processed)
	}

	// The recovered run's artifact is complete and byte-exact.
	path, err := m2.ResultsPath(j1.ID)
	if err != nil {
		t.Fatal(err)
	}
	got := readArtifact(t, path)
	want := expectedArtifact(t, eng, dirty, validated)
	if len(got) != len(want) {
		t.Fatalf("recovered artifact has %d lines, want %d", len(got), len(want))
	}
	for i := range want {
		if string(got[i]) != string(want[i]) {
			t.Fatalf("recovered artifact line %d differs", i)
		}
	}
}

func TestJobCancel(t *testing.T) {
	eng, dirty, validated := testWorkload(t, 20, 50)
	gs := &gatedSnapshot{eng: eng, gate: make(chan struct{})}
	m, err := Open(Config{Dir: t.TempDir(), Schema: dataset.CustSchema(), Snapshot: gs.snapshot})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close(context.Background())

	tuples := make([]map[string]string, len(dirty))
	for i, tu := range dirty {
		tuples[i] = tu.Map()
	}
	j1, err := m.SubmitInline(validated, tuples)
	if err != nil {
		t.Fatal(err)
	}
	j2, err := m.SubmitInline(validated, tuples[:5])
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, m, j1.ID, StateRunning)

	// Cancelling a queued job is immediate.
	if _, err := m.Cancel(j2.ID); err != nil {
		t.Fatal(err)
	}
	if j, _ := m.Get(j2.ID); j.State != StateCancelled {
		t.Fatalf("queued cancel: state = %s", j.State)
	}

	// Cancelling the running job aborts its pipeline.
	if _, err := m.Cancel(j1.ID); err != nil {
		t.Fatal(err)
	}
	close(gs.gate)
	waitState(t, m, j1.ID, StateCancelled)

	// Terminal jobs refuse another cancel; unknown IDs are not found.
	if _, err := m.Cancel(j1.ID); !errors.Is(err, ErrFinished) {
		t.Fatalf("re-cancel = %v, want ErrFinished", err)
	}
	if _, err := m.Cancel("nope"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("cancel unknown = %v, want ErrNotFound", err)
	}

	// Remove purges terminal jobs (and only those): record and
	// directory both go away.
	rec, err := m.Get(j1.ID)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Remove(j1.ID); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Get(j1.ID); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Get after Remove = %v, want ErrNotFound", err)
	}
	if _, err := os.Stat(filepath.Join(m.cfg.Dir, rec.ID)); !os.IsNotExist(err) {
		t.Fatalf("job dir survived Remove: %v", err)
	}
	if err := m.Remove("nope"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Remove unknown = %v, want ErrNotFound", err)
	}
}

// Remove refuses live jobs.
func TestJobRemoveLiveRefused(t *testing.T) {
	eng, dirty, validated := testWorkload(t, 10, 20)
	gs := &gatedSnapshot{eng: eng, gate: make(chan struct{})}
	m, err := Open(Config{Dir: t.TempDir(), Schema: dataset.CustSchema(), Snapshot: gs.snapshot})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close(context.Background())
	j, err := m.SubmitInline(validated, []map[string]string{dirty[0].Map()})
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, m, j.ID, StateRunning)
	if err := m.Remove(j.ID); err == nil {
		t.Fatal("Remove accepted a running job")
	}
	close(gs.gate)
	waitState(t, m, j.ID, StateDone)
	if err := m.Remove(j.ID); err != nil {
		t.Fatal(err)
	}
}

func TestJobSubmitValidation(t *testing.T) {
	eng, dirty, validated := testWorkload(t, 5, 5)
	m, err := Open(Config{Dir: t.TempDir(), Schema: dataset.CustSchema(), Snapshot: eng.Snapshot})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close(context.Background())

	if _, err := m.SubmitInline(nil, []map[string]string{dirty[0].Map()}); err == nil {
		t.Fatal("empty validated list accepted")
	}
	if _, err := m.SubmitInline([]string{"bogus"}, []map[string]string{dirty[0].Map()}); err == nil {
		t.Fatal("unknown attribute accepted")
	}
	if _, err := m.SubmitInline(validated, nil); err == nil {
		t.Fatal("empty tuple list accepted")
	}
	if _, err := m.SubmitInline(validated, []map[string]string{{"bogus": "x"}}); err == nil {
		t.Fatal("tuple with unknown attribute accepted")
	}
	// No InputRoot configured: every server-side path is refused.
	if _, err := m.SubmitFile(validated, "/definitely/not/there.csv", FormatCSV); err == nil {
		t.Fatal("server-side path accepted without an input root")
	}
	if _, err := m.SubmitFile(validated, "/tmp", "parquet"); err == nil {
		t.Fatal("bad format accepted")
	}
	if _, err := m.Get("nope"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Get unknown = %v, want ErrNotFound", err)
	}
	if _, err := m.ResultsPath("nope"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("ResultsPath unknown = %v, want ErrNotFound", err)
	}
}

// List is FIFO by ID and survives reloads in order.
func TestJobListOrder(t *testing.T) {
	eng, dirty, validated := testWorkload(t, 5, 5)
	dir := t.TempDir()
	m, err := Open(Config{Dir: dir, Schema: dataset.CustSchema(), Snapshot: eng.Snapshot})
	if err != nil {
		t.Fatal(err)
	}
	var ids []string
	for i := 0; i < 3; i++ {
		j, err := m.SubmitInline(validated, []map[string]string{dirty[0].Map()})
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, j.ID)
	}
	for _, id := range ids {
		waitState(t, m, id, StateDone)
	}
	if err := m.Close(context.Background()); err != nil {
		t.Fatal(err)
	}
	m2, err := Open(Config{Dir: dir, Schema: dataset.CustSchema(), Snapshot: eng.Snapshot})
	if err != nil {
		t.Fatal(err)
	}
	defer m2.Close(context.Background())
	list := m2.List()
	if len(list) != 3 {
		t.Fatalf("list = %d jobs, want 3", len(list))
	}
	for i, j := range list {
		if j.ID != ids[i] {
			t.Fatalf("list[%d] = %s, want %s", i, j.ID, ids[i])
		}
	}
	// New submissions continue the ID sequence instead of colliding.
	j4, err := m2.SubmitInline(validated, []map[string]string{dirty[0].Map()})
	if err != nil {
		t.Fatal(err)
	}
	if j4.ID <= ids[2] {
		t.Fatalf("post-reload ID %s does not extend %s", j4.ID, ids[2])
	}
	waitState(t, m2, j4.ID, StateDone)
}
