package main

import (
	"encoding/csv"
	"fmt"
	"os"

	"cerfix"
	"cerfix/internal/storage"
)

// loadCSVTuples reads input tuples from a CSV file under the system's
// input schema.
func loadCSVTuples(sys *cerfix.System, path string) ([]*cerfix.Tuple, error) {
	t := storage.NewTable(sys.InputSchema())
	if err := t.LoadCSVFile(path); err != nil {
		return nil, err
	}
	return t.All(), nil
}

// writeCSV writes header + rows to path.
func writeCSV(path string, header []string, rows [][]string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	w := csv.NewWriter(f)
	if err := w.Write(header); err != nil {
		return fmt.Errorf("writing header: %w", err)
	}
	for _, r := range rows {
		if err := w.Write(r); err != nil {
			return fmt.Errorf("writing row: %w", err)
		}
	}
	w.Flush()
	if err := w.Error(); err != nil {
		return err
	}
	return f.Sync()
}
