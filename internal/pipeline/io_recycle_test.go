package pipeline

import (
	"bytes"
	"context"
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"strings"
	"testing"

	"cerfix/internal/dataset"
	"cerfix/internal/schema"
	"cerfix/internal/value"
)

// This file tests the recycling behavior the zero-alloc pipeline
// introduced: sources that reuse their decoded tuple (and the JSONL
// fast path's parity with the encoding/json decoder it bypasses), and
// sinks that render through reused buffers byte-identically to the
// encoding/json output they replaced.

// legacyJSONLDecode is the pre-recycling JSONL decoder: encoding/json
// into a fresh map, TupleFromMap into a fresh tuple. The reference the
// fast path must match line for line — values AND errors.
func legacyJSONLDecode(sch *schema.Schema, line []byte, lineNo int) (*schema.Tuple, error) {
	var m map[string]string
	if err := json.Unmarshal(line, &m); err != nil {
		return nil, fmt.Errorf("jsonl line %d: %w", lineNo, err)
	}
	tu, err := schema.TupleFromMap(sch, m)
	if err != nil {
		return nil, fmt.Errorf("jsonl line %d: %w", lineNo, err)
	}
	return tu, nil
}

// TestJSONLSourceMatchesLegacyDecoder feeds hand-picked and randomized
// well-formed lines — plain, escaped, unicode, duplicate keys, odd
// whitespace — through the reusing source and the legacy decoder,
// expecting identical tuples.
func TestJSONLSourceMatchesLegacyDecoder(t *testing.T) {
	sch := dataset.CustSchema()
	attrs := sch.AttrNames()
	lines := []string{
		`{"FN":"Bob","LN":"Brady","AC":"131","phn":"6884563","type":"1","str":"501 Elm St","city":"Edi","zip":"EH8 4AH","item":"CD"}`,
		`{}`,
		`{"FN":""}`,
		`  { "FN" : "spaced" , "LN" : "out" }  `,
		`{"FN":"dup","FN":"last-wins"}`,
		`{"FN":"esc\"aped","LN":"back\\slash","AC":"tab\there"}`,
		`{"FN":"uni\u00e9code","LN":"naïve café 漢字"}`,
		`{"FN":"control\u0001char"}`,
		`{"FN":"🚀 emoji"}`,
		`{"zip":"only tail attr"}`,
	}
	rng := rand.New(rand.NewSource(5))
	values := []string{"", "plain", `qu\"ote`, `back\\slash`, "é漢🚀", "<html>&amp;", "1e-9", "spaces in value"}
	for i := 0; i < 300; i++ {
		var sb strings.Builder
		sb.WriteByte('{')
		n := rng.Intn(len(attrs) + 1)
		for j := 0; j < n; j++ {
			if j > 0 {
				sb.WriteByte(',')
			}
			fmt.Fprintf(&sb, "%q:\"%s\"", attrs[rng.Intn(len(attrs))], values[rng.Intn(len(values))])
		}
		sb.WriteByte('}')
		lines = append(lines, sb.String())
	}

	src := NewJSONLSource(sch, strings.NewReader(strings.Join(lines, "\n")))
	for i, line := range lines {
		want, wantErr := legacyJSONLDecode(sch, []byte(line), i+1)
		if wantErr != nil {
			t.Fatalf("test bug: reference rejects line %d %q: %v", i+1, line, wantErr)
		}
		got, gotErr := src.Next()
		if gotErr != nil {
			t.Fatalf("line %d %q: %v", i+1, line, gotErr)
		}
		if !got.Vals.Equal(want.Vals) {
			t.Fatalf("line %d %q:\n got %v\nwant %v", i+1, line, got.Vals, want.Vals)
		}
	}
	if _, err := src.Next(); err != io.EOF {
		t.Fatalf("tail err = %v, want EOF", err)
	}
}

// TestJSONLSourceErrorParity runs malformed and fallback-shaped lines
// as single-line streams so error text can be compared 1:1 with the
// legacy decoder — the fast path must never accept what encoding/json
// rejects, nor reword what it reports.
func TestJSONLSourceErrorParity(t *testing.T) {
	sch := dataset.CustSchema()
	lines := []string{
		`{"FN":null}`,
		`{"FN":123}`,
		`{"FN":{"nested":"x"}}`,
		`{"unknown":"attr"}`,
		`{"FN":"trailing"} junk`,
		`{"FN" "colonless"}`,
		`not json at all`,
		`[1,2,3]`,
		"{\"FN\":\"bad\xff utf8\"}",
		`{"FN":"unterminated`,
		`   `,
		"{\"FN\":\"tab\tliteral\"}", // raw control char inside a string
		`{"FN":"a",}`,
	}
	for _, line := range lines {
		want, wantErr := legacyJSONLDecode(sch, []byte(line), 1)
		src := NewJSONLSource(sch, strings.NewReader(line))
		got, gotErr := src.Next()
		if (gotErr == nil) != (wantErr == nil) {
			t.Fatalf("%q: err %v, want %v", line, gotErr, wantErr)
		}
		if wantErr != nil {
			if gotErr.Error() != wantErr.Error() {
				t.Fatalf("%q:\n got error %q\nwant error %q", line, gotErr, wantErr)
			}
			continue
		}
		if !got.Vals.Equal(want.Vals) {
			t.Fatalf("%q: got %v, want %v", line, got.Vals, want.Vals)
		}
	}
}

// TestJSONLSourceValuesSurviveReuse pins the part of the contract the
// arena copy relies on: the VALUES of tuple N must stay intact after
// Next(N+1) reuses the tuple struct, because results retain them.
func TestJSONLSourceValuesSurviveReuse(t *testing.T) {
	sch := dataset.CustSchema()
	var sb strings.Builder
	const n = 50
	for i := 0; i < n; i++ {
		fmt.Fprintf(&sb, "{\"FN\":\"fn%03d\",\"LN\":\"ln%03d\",\"city\":\"é%03d\"}\n", i, i, i)
	}
	src := NewJSONLSource(sch, strings.NewReader(sb.String()))
	var snapshots []value.List
	for i := 0; i < n; i++ {
		tu, err := src.Next()
		if err != nil {
			t.Fatal(err)
		}
		// Copy the value headers only — the strings must remain valid.
		snapshots = append(snapshots, append(value.List(nil), tu.Vals...))
	}
	fn, city := sch.MustIndex("FN"), sch.MustIndex("city")
	for i, vals := range snapshots {
		if want := value.V(fmt.Sprintf("fn%03d", i)); vals[fn] != want {
			t.Fatalf("tuple %d FN = %q, want %q (buffer reuse clobbered values)", i, vals[fn], want)
		}
		if want := value.V(fmt.Sprintf("é%03d", i)); vals[city] != want {
			t.Fatalf("tuple %d city = %q, want %q", i, vals[city], want)
		}
	}
}

// TestStreamingSourcesMatchSliceSource is the end-to-end recycling
// proof: the same workload repaired through the reusing CSV and JSONL
// sources (with the pipeline copying out of their reused tuples)
// produces byte-identical JSONL sink output to the slice source, at
// several worker counts.
func TestStreamingSourcesMatchSliceSource(t *testing.T) {
	eng, dirty, seed := workloadEngine(t, 40, 300)
	sch := dataset.CustSchema()

	var want bytes.Buffer
	if _, err := Run(context.Background(), eng, seed, NewSliceSource(dirty), NewJSONLSink(&want), &Options{Workers: 1}); err != nil {
		t.Fatal(err)
	}

	var csvData bytes.Buffer
	cw := csv.NewWriter(&csvData)
	if err := cw.Write(sch.AttrNames()); err != nil {
		t.Fatal(err)
	}
	for _, tu := range dirty {
		if err := cw.Write(tu.Vals.Strings()); err != nil {
			t.Fatal(err)
		}
	}
	cw.Flush()
	var jsonlData bytes.Buffer
	enc := json.NewEncoder(&jsonlData)
	for _, tu := range dirty {
		if err := enc.Encode(tu.Map()); err != nil {
			t.Fatal(err)
		}
	}

	for _, workers := range []int{1, 4} {
		csvSrc, err := NewCSVSource(sch, bytes.NewReader(csvData.Bytes()))
		if err != nil {
			t.Fatal(err)
		}
		var got bytes.Buffer
		if _, err := Run(context.Background(), eng, seed, csvSrc, NewJSONLSink(&got), &Options{Workers: workers, Window: 32, ChunkSize: 8}); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got.Bytes(), want.Bytes()) {
			t.Fatalf("csv source at %d workers diverges from slice source", workers)
		}

		got.Reset()
		if _, err := Run(context.Background(), eng, seed, NewJSONLSource(sch, bytes.NewReader(jsonlData.Bytes())), NewJSONLSink(&got), &Options{Workers: workers, Window: 32, ChunkSize: 8}); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got.Bytes(), want.Bytes()) {
			t.Fatalf("jsonl source at %d workers diverges from slice source", workers)
		}
	}
}

// legacyJSONLSinkEncode is the pre-recycling sink: a jsonlRecord
// through encoding/json.
func legacyJSONLSinkEncode(t *testing.T, w io.Writer, r *Result) {
	t.Helper()
	rec := jsonlRecord{
		Tuple:    r.Fixed.Map(),
		Done:     r.Chase.AllValidated() && len(r.Chase.Conflicts) == 0,
		Rewrites: len(r.Chase.Rewrites()),
	}
	for _, c := range r.Chase.Conflicts {
		rec.Conflicts = append(rec.Conflicts, c.Error())
	}
	if err := json.NewEncoder(w).Encode(rec); err != nil {
		t.Fatal(err)
	}
}

// TestJSONLSinkByteParity pins the append-style sink against the
// encoding/json reference across fixed results, conflict-bearing
// results and values that exercise the escaper.
func TestJSONLSinkByteParity(t *testing.T) {
	eng, dirty, seed := workloadEngine(t, 30, 120)
	sch := dataset.CustSchema()

	// Inputs that produce conflicts (validated wrong FN/LN contradict
	// what φ4/φ5 derive) and escape-heavy junk values that flow
	// through unvalidated.
	extra := []*schema.Tuple{
		schema.MustTuple(sch, "Wrong", "Name", "201", "075568485", "2", "st", "city", "zip", "it"),
		schema.MustTuple(sch, `qu"ote`, `back\slash`, "a&b", "<tag>", "new\nline", "é漢🚀", "\u2028sep", "ctrl\x01", "DVD"),
	}
	inputs := append(append([]*schema.Tuple{}, dirty...), extra...)
	conflictSeed := schema.SetOfNames(sch, "FN", "LN", "phn", "type", "item")

	for _, cfg := range []struct {
		name string
		seed schema.AttrSet
	}{{"workload", seed}, {"conflicts", conflictSeed}} {
		var want, got bytes.Buffer
		refSink := SinkFunc(func(r *Result) error {
			legacyJSONLSinkEncode(t, &want, r)
			return nil
		})
		if _, err := Run(context.Background(), eng, cfg.seed, NewSliceSource(inputs), refSink, &Options{Workers: 1}); err != nil {
			t.Fatal(err)
		}
		if _, err := Run(context.Background(), eng, cfg.seed, NewSliceSource(inputs), NewJSONLSink(&got), &Options{Workers: 1}); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got.Bytes(), want.Bytes()) {
			gl := bytes.Split(got.Bytes(), []byte("\n"))
			wl := bytes.Split(want.Bytes(), []byte("\n"))
			for i := range wl {
				if i >= len(gl) || !bytes.Equal(gl[i], wl[i]) {
					t.Fatalf("%s: line %d diverges\n got %s\nwant %s", cfg.name, i, gl[i], wl[i])
				}
			}
			t.Fatalf("%s: sink output diverges in length", cfg.name)
		}
	}
}

// TestResultCloneIndependent: a cloned result survives the arena being
// recycled underneath it (the SliceSink path exercised directly).
func TestResultCloneIndependent(t *testing.T) {
	eng, dirty, seed := workloadEngine(t, 20, 64)
	sink := &SliceSink{}
	if _, err := Run(context.Background(), eng, seed, NewSliceSource(dirty), sink, &Options{Workers: 4, Window: 8, ChunkSize: 2}); err != nil {
		t.Fatal(err)
	}
	// With Window 8 and 64 tuples, every arena slot was recycled many
	// times; the retained clones must still match a fresh sequential
	// chase.
	for i, r := range sink.Results {
		want := eng.Chase(dirty[i], seed)
		if !r.Fixed.Equal(want.Tuple) {
			t.Fatalf("tuple %d: retained clone clobbered by arena recycling", i)
		}
		if !r.Input.Equal(dirty[i]) {
			t.Fatalf("tuple %d: retained input clone clobbered", i)
		}
		if r.Fixed != r.Chase.Tuple {
			t.Fatalf("tuple %d: clone broke the Fixed == Chase.Tuple alias", i)
		}
	}
}
