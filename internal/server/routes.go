package server

import (
	"fmt"
	"log"
	"net/http"

	"cerfix/internal/admission"
)

// The API surface is one declarative route table mounted twice: the
// canonical versioned prefix /api/v1 and the original bare /api as a
// compatibility alias. Both prefixes dispatch to the same wrapped
// handler, so responses are byte-identical (pinned by regression
// test); new clients should use /api/v1.

// limitClass names the admission treatment a route gets beyond the
// global middleware chain (rate limiting applies to every class).
type limitClass int

const (
	// classRead and classMutate take no extra gating.
	classRead limitClass = iota
	classMutate
	// classSyncFix runs under the synchronous-fix concurrency gate
	// (-max-sync-fix): past the cap, requests shed with 429.
	classSyncFix
)

// route is one line of the API surface: method, path (under the
// prefix), limits class and handler.
type route struct {
	method string
	path   string
	class  limitClass
	h      http.HandlerFunc
}

// routeTable declares every endpoint once. Paths use net/http
// ServeMux patterns ({id} wildcards).
func (s *Server) routeTable() []route {
	return []route{
		{"GET", "/status", classRead, s.handleStatus},
		{"GET", "/rules", classRead, s.handleRulesList},
		{"POST", "/rules", classMutate, s.handleRulesAdd},
		{"DELETE", "/rules/{id}", classMutate, s.handleRulesDelete},
		{"POST", "/rules/check", classRead, s.handleRulesCheck},
		{"GET", "/regions", classRead, s.handleRegions},
		{"GET", "/master", classRead, s.handleMasterList},
		{"POST", "/master", classMutate, s.handleMasterAdd},
		{"POST", "/sessions", classMutate, s.handleSessionOpen},
		{"GET", "/sessions/{id}", classRead, s.handleSessionGet},
		{"POST", "/sessions/{id}/validate", classMutate, s.handleSessionValidate},
		{"GET", "/sessions/{id}/explain", classRead, s.handleSessionExplain},
		{"GET", "/audit/stats", classRead, s.handleAuditStats},
		{"GET", "/audit/tuples/{id}", classRead, s.handleAuditTuple},
		{"GET", "/audit/cell", classRead, s.handleAuditCell},
		{"POST", "/fix", classSyncFix, s.handleBatchFix},
		{"POST", "/jobs", classMutate, s.handleJobSubmit},
		{"GET", "/jobs", classRead, s.handleJobList},
		{"GET", "/jobs/{id}", classRead, s.handleJobGet},
		{"GET", "/jobs/{id}/results", classRead, s.handleJobResults},
		{"DELETE", "/jobs/{id}", classMutate, s.handleJobCancel},
	}
}

// Handler returns the HTTP surface: the route table mounted under
// /api/v1 and /api, wrapped in the admission middleware chain.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	for _, rt := range s.routeTable() {
		h := rt.h
		if rt.class == classSyncFix {
			h = s.withSyncGate(h)
		}
		mux.HandleFunc(rt.method+" /api/v1"+rt.path, h)
		mux.HandleFunc(rt.method+" /api"+rt.path, h)
	}
	// Unknown paths get the envelope too, not net/http's text 404.
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		writeErr(w, r, http.StatusNotFound, codeNotFound,
			fmt.Errorf("no such endpoint: %s %s", r.Method, r.URL.Path))
	})
	return s.chain(mux)
}

// Limits configures the front door. Zero values disable each control,
// preserving the unlimited development behavior.
type Limits struct {
	// Rate admits this many requests/second per key (X-Api-Key or
	// client IP); 0 disables rate limiting.
	Rate float64
	// Burst is the token-bucket capacity per key (min 1 when rate
	// limiting is on).
	Burst int
	// MaxSyncFix caps concurrent POST /fix runs; 0 means unlimited.
	MaxSyncFix int
}

// SetLimits installs the admission configuration. Call before
// Handler.
func (s *Server) SetLimits(l Limits) {
	s.limits = l
	if l.Rate > 0 {
		s.limiter = admission.NewLimiter(l.Rate, l.Burst)
	} else {
		s.limiter = nil
	}
	if l.MaxSyncFix > 0 {
		s.fixGate = admission.NewGate(l.MaxSyncFix)
	} else {
		s.fixGate = nil
	}
}

// SetAccessLog installs the structured per-request logger (nil keeps
// access logging off; panics always log to the error logger).
func (s *Server) SetAccessLog(l *log.Logger) { s.accessLog = l }

// SetErrorLog overrides the destination for panic and fault logs
// (default: the process-standard logger).
func (s *Server) SetErrorLog(l *log.Logger) { s.errorLog = l }
