package pattern

import (
	"strings"
	"testing"

	"cerfix/internal/schema"
	"cerfix/internal/value"
)

func testSchema(t *testing.T) *schema.Schema {
	t.Helper()
	return schema.MustNew("R",
		schema.Str("AC"), schema.Str("type"), schema.Str("city"),
		schema.Int("n"))
}

func tup(t *testing.T, sch *schema.Schema, ac, ty, city, n string) *schema.Tuple {
	t.Helper()
	return schema.MustTuple(sch, value.V(ac), value.V(ty), value.V(city), value.V(n))
}

func TestOpString(t *testing.T) {
	want := map[Op]string{OpAny: "_", OpEq: "=", OpNe: "!=", OpLt: "<", OpLe: "<=", OpGt: ">", OpGe: ">=", OpIn: "in"}
	for op, s := range want {
		if op.String() != s {
			t.Errorf("Op(%d).String() = %q, want %q", op, op.String(), s)
		}
	}
}

func TestConditionMatches(t *testing.T) {
	d := value.DString
	cases := []struct {
		c    Condition
		v    value.V
		want bool
	}{
		{Any("x"), "anything", true},
		{Eq("x", "a"), "a", true},
		{Eq("x", "a"), "b", false},
		{Ne("x", "0800"), "020", true},
		{Ne("x", "0800"), "0800", false},
		{Lt("x", "m"), "a", true},
		{Lt("x", "m"), "m", false},
		{Le("x", "m"), "m", true},
		{Gt("x", "m"), "z", true},
		{Gt("x", "m"), "m", false},
		{Ge("x", "m"), "m", true},
		{In("x", "a", "b"), "b", true},
		{In("x", "a", "b"), "c", false},
	}
	for _, c := range cases {
		if got := c.c.Matches(c.v, d); got != c.want {
			t.Errorf("%v.Matches(%q) = %v, want %v", c.c, c.v, got, c.want)
		}
	}
}

func TestConditionNumericDomain(t *testing.T) {
	c := Lt("n", "10")
	if !c.Matches("9", value.DInt) {
		t.Error("9 < 10 under DInt failed")
	}
	if c.Matches("9", value.DString) {
		t.Error("\"9\" < \"10\" under DString should fail")
	}
}

func TestInDeduplication(t *testing.T) {
	c := In("x", "b", "a", "a")
	if len(c.Set) != 2 || c.Set[0] != "a" || c.Set[1] != "b" {
		t.Fatalf("In set = %v", c.Set)
	}
}

func TestPatternMatches(t *testing.T) {
	sch := testSchema(t)
	p := NewPattern(Eq("type", "2"), Ne("AC", "0800"))
	if !p.Matches(tup(t, sch, "131", "2", "Edi", "1")) {
		t.Error("expected match")
	}
	if p.Matches(tup(t, sch, "0800", "2", "Edi", "1")) {
		t.Error("AC=0800 should fail Ne")
	}
	if p.Matches(tup(t, sch, "131", "1", "Edi", "1")) {
		t.Error("type=1 should fail Eq")
	}
	empty := NewPattern()
	if !empty.Matches(tup(t, sch, "x", "y", "z", "0")) {
		t.Error("empty pattern must match everything")
	}
	foreign := NewPattern(Eq("nope", "1"))
	if foreign.Matches(tup(t, sch, "x", "y", "z", "0")) {
		t.Error("pattern over foreign attribute must not match")
	}
}

func TestPatternAttrsAndScope(t *testing.T) {
	sch := testSchema(t)
	p := NewPattern(Eq("type", "2"), Ne("AC", "0800"), Any("city"))
	attrs := p.Attrs()
	if len(attrs) != 3 || attrs[0] != "AC" || attrs[1] != "city" || attrs[2] != "type" {
		t.Fatalf("Attrs = %v", attrs)
	}
	set := p.AttrSet(sch)
	if set.Count() != 3 {
		t.Fatalf("AttrSet count = %d", set.Count())
	}
}

func TestPatternString(t *testing.T) {
	p := NewPattern(Eq("type", "2"), Ne("AC", "0800"))
	s := p.String()
	if !strings.Contains(s, `type = "2"`) || !strings.Contains(s, `AC != "0800"`) {
		t.Errorf("String = %q", s)
	}
	if NewPattern().String() != "()" {
		t.Errorf("empty pattern String = %q", NewPattern().String())
	}
	in := NewPattern(In("AC", "131", "020"))
	if !strings.Contains(in.String(), "in {") {
		t.Errorf("IN String = %q", in.String())
	}
}

func TestPatternValidate(t *testing.T) {
	sch := testSchema(t)
	if err := NewPattern(Eq("type", "2")).Validate(sch); err != nil {
		t.Errorf("valid pattern rejected: %v", err)
	}
	if err := NewPattern(Eq("bogus", "2")).Validate(sch); err == nil {
		t.Error("unknown attribute accepted")
	}
	if err := NewPattern(Condition{Attr: "AC", Op: OpIn}).Validate(sch); err == nil {
		t.Error("empty IN accepted")
	}
}

func TestConjoin(t *testing.T) {
	sch := testSchema(t)
	p := NewPattern(Eq("type", "2"))
	q := NewPattern(Ne("AC", "0800"))
	r := p.Conjoin(q)
	if len(r.Conds) != 2 {
		t.Fatalf("Conjoin conds = %d", len(r.Conds))
	}
	if !r.Matches(tup(t, sch, "131", "2", "x", "0")) {
		t.Error("conjoined pattern should match")
	}
	if r.Matches(tup(t, sch, "0800", "2", "x", "0")) {
		t.Error("conjoined pattern should reject")
	}
}
