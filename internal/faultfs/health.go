package faultfs

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"time"
)

// ErrDegraded marks an operation refused because persistence is in
// degraded mode. HTTP handlers map it to a typed 503
// persistence_degraded with a Retry-After.
var ErrDegraded = errors.New("persistence degraded")

// Health is the persistence health state machine. Every durable
// operation reports its outcome via ReportResult: a transient storage
// fault (see Transient) flips the state to degraded, a success flips
// it back to healthy. While degraded, Check fast-fails callers with
// ErrDegraded — keeping the in-memory serving paths alive instead of
// letting every request grind against a dead disk — and at most once
// per probe interval runs the configured probe; a successful probe
// restores healthy and lets the triggering caller proceed, so
// recovery is automatic the moment space (or the device) returns.
type Health struct {
	probe      func() error
	probeEvery time.Duration

	mu        sync.Mutex
	onChange  func(degraded bool, reason string)
	degraded  bool
	reason    string
	since     time.Time
	lastProbe time.Time
	flips     int64
}

// HealthStatus is the JSON shape surfaced under persistence.health on
// GET /api/v1/status.
type HealthStatus struct {
	// State is "ok" or "degraded".
	State string `json:"state"`
	// Reason is the storage error that triggered degradation.
	Reason string `json:"reason,omitempty"`
	// Degradations counts healthy→degraded transitions since start.
	Degradations int64 `json:"degradations"`
	// RetryAfterSeconds is the suggested client backoff while degraded.
	RetryAfterSeconds int `json:"retry_after_s,omitempty"`
}

// NewHealth builds a health tracker. probe is a cheap durable-write
// check (see DiskProbe) run at most once per probeEvery while
// degraded; nil disables probing (only ReportResult(nil) can then
// restore healthy).
func NewHealth(probe func() error, probeEvery time.Duration) *Health {
	if probeEvery <= 0 {
		probeEvery = 3 * time.Second
	}
	return &Health{probe: probe, probeEvery: probeEvery}
}

// SetOnChange registers a callback invoked (outside the lock) on
// every state transition — cerfixd logs them.
func (h *Health) SetOnChange(fn func(degraded bool, reason string)) {
	h.mu.Lock()
	h.onChange = fn
	h.mu.Unlock()
}

// ReportResult feeds the outcome of a durable operation. nil restores
// healthy; a Transient error degrades. Permanent errors (bad input,
// logic bugs) do not touch health — they are not the disk's fault.
func (h *Health) ReportResult(err error) {
	if err != nil && !Transient(err) {
		return
	}
	h.mu.Lock()
	var notify func(bool, string)
	var toDegraded bool
	var reason string
	if err == nil {
		if h.degraded {
			h.degraded = false
			h.reason = ""
			notify, toDegraded = h.onChange, false
		}
	} else {
		reason = err.Error()
		h.reason = reason
		if !h.degraded {
			h.degraded = true
			h.since = time.Now()
			h.lastProbe = time.Time{}
			h.flips++
			notify, toDegraded = h.onChange, true
		}
	}
	h.mu.Unlock()
	if notify != nil {
		notify(toDegraded, reason)
	}
}

// Check gates an operation on health. Healthy: returns nil. Degraded:
// if the probe interval has elapsed, runs the probe — on success the
// state flips to healthy and the caller proceeds; otherwise (probe
// failed, or not yet due) returns an error wrapping ErrDegraded.
func (h *Health) Check() error {
	h.mu.Lock()
	if !h.degraded {
		h.mu.Unlock()
		return nil
	}
	reason := h.reason
	due := h.probe != nil && time.Since(h.lastProbe) >= h.probeEvery
	if due {
		h.lastProbe = time.Now()
	}
	h.mu.Unlock()
	if due {
		if err := h.probe(); err == nil {
			h.ReportResult(nil)
			return nil
		} else if Transient(err) {
			h.ReportResult(err)
			reason = err.Error()
		}
	}
	return fmt.Errorf("%w: %s", ErrDegraded, reason)
}

// RetryAfter is the backoff to advertise to shed clients.
func (h *Health) RetryAfter() time.Duration {
	if h.probeEvery < time.Second {
		return time.Second
	}
	return h.probeEvery
}

// Status snapshots the state for /api/v1/status.
func (h *Health) Status() HealthStatus {
	h.mu.Lock()
	defer h.mu.Unlock()
	st := HealthStatus{State: "ok", Degradations: h.flips}
	if h.degraded {
		st.State = "degraded"
		st.Reason = h.reason
		st.RetryAfterSeconds = int(h.retryAfterLocked() / time.Second)
	}
	return st
}

func (h *Health) retryAfterLocked() time.Duration {
	if h.probeEvery < time.Second {
		return time.Second
	}
	return h.probeEvery
}

// DiskProbe returns a probe that proves dir can take a durable write:
// create a scratch file, write, fsync, remove.
func DiskProbe(fsys FS, dir string) func() error {
	return func() error {
		path := filepath.Join(dir, ".health-probe")
		f, err := fsys.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
		if err != nil {
			return err
		}
		if _, err := f.Write([]byte("ok\n")); err != nil {
			f.Close()
			return err
		}
		if err := f.Sync(); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		return fsys.Remove(path)
	}
}
