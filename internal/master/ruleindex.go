package master

import (
	"sort"
	"strings"
	"sync"

	"cerfix/internal/rule"
	"cerfix/internal/schema"
	"cerfix/internal/value"
)

// This file implements the unique-RHS rule index, the master data
// manager's fast path. The certain-fix lookup of a rule φ asks one
// question per probe key k = t[X]: do all master tuples with s[Xm] = k
// agree on s[Bm], and on what value? A plain hash index answers it in
// O(|group|) by materializing the group; for non-key match attributes
// (the demo's φ9 matches on area code, shared by every customer of a
// city) groups grow linearly with master size and dominate fix
// latency (benchmark E5's plain-index column shows this).
//
// The rule index precomputes the answer per key: a map from k to
// either the agreed RHS values plus a witness tuple ID, or a conflict
// marker. Lookups become O(1) regardless of group size. The index is
// maintained incrementally on Store inserts (master data is
// append-mostly); bulk loads that bypass the Store rebuild it via
// PrepareForRules.

// LookupMode selects the master access path (E5's ablation knob).
type LookupMode int

const (
	// ModeRuleIndex uses the precomputed unique-RHS map: O(1) per
	// probe. The default.
	ModeRuleIndex LookupMode = iota
	// ModePlainIndex uses the storage hash index and verifies RHS
	// agreement per probe: O(|key group|).
	ModePlainIndex
	// ModeScan performs full relation scans: O(|master|).
	ModeScan
)

// String names the mode.
func (m LookupMode) String() string {
	switch m {
	case ModeRuleIndex:
		return "rule-index"
	case ModePlainIndex:
		return "plain-index"
	case ModeScan:
		return "scan"
	default:
		return "unknown"
	}
}

// rhsEntry is the per-key precomputed answer.
type rhsEntry struct {
	rhs      value.List
	witness  int64
	conflict bool
}

// ruleIndex holds one (Xm, Bm) unique-RHS map.
type ruleIndex struct {
	matchAttrs []string
	rhsAttrs   []string
	entries    map[string]*rhsEntry
}

// ruleIndexKey canonicalizes the (Xm, Bm) pair.
func ruleIndexKey(matchAttrs, rhsAttrs []string) string {
	var b strings.Builder
	for _, a := range matchAttrs {
		b.WriteByte(byte(len(a)))
		b.WriteString(a)
	}
	b.WriteByte(0xff)
	for _, a := range rhsAttrs {
		b.WriteByte(byte(len(a)))
		b.WriteString(a)
	}
	return b.String()
}

// ruleIndexes is the Store's registry (separate struct to keep the
// main file focused).
type ruleIndexes struct {
	mu      sync.RWMutex
	indexes map[string]*ruleIndex
}

func newRuleIndexes() *ruleIndexes {
	return &ruleIndexes{indexes: make(map[string]*ruleIndex)}
}

// build constructs the index for one (Xm, Bm) pair from all rows.
func (ri *ruleIndexes) build(matchAttrs, rhsAttrs []string, rows []*schema.Tuple) {
	idx := &ruleIndex{
		matchAttrs: append([]string(nil), matchAttrs...),
		rhsAttrs:   append([]string(nil), rhsAttrs...),
		entries:    make(map[string]*rhsEntry, len(rows)),
	}
	for _, s := range rows {
		idx.add(s)
	}
	ri.mu.Lock()
	ri.indexes[ruleIndexKey(matchAttrs, rhsAttrs)] = idx
	ri.mu.Unlock()
}

func (ix *ruleIndex) add(s *schema.Tuple) {
	k := s.Project(ix.matchAttrs).Key()
	rhs := s.Project(ix.rhsAttrs)
	e, ok := ix.entries[k]
	if !ok {
		ix.entries[k] = &rhsEntry{rhs: rhs, witness: s.ID}
		return
	}
	if !e.conflict && !e.rhs.Equal(rhs) {
		e.conflict = true
	}
}

// insert maintains every registered index for a new master tuple.
func (ri *ruleIndexes) insert(s *schema.Tuple) {
	ri.mu.Lock()
	defer ri.mu.Unlock()
	for _, ix := range ri.indexes {
		ix.add(s)
	}
}

// clone deep-copies the registry. Entry rhs lists are shared (they are
// never mutated after construction); the conflict flags and the maps
// themselves are copied, so inserts on either side stay invisible to
// the other.
func (ri *ruleIndexes) clone() *ruleIndexes {
	ri.mu.RLock()
	defer ri.mu.RUnlock()
	cp := newRuleIndexes()
	for k, ix := range ri.indexes {
		entries := make(map[string]*rhsEntry, len(ix.entries))
		for ek, e := range ix.entries {
			ecp := *e
			entries[ek] = &ecp
		}
		cp.indexes[k] = &ruleIndex{matchAttrs: ix.matchAttrs, rhsAttrs: ix.rhsAttrs, entries: entries}
	}
	return cp
}

// lookup answers the unique-RHS question for a registered pair; the
// second result reports whether the pair has an index.
func (ri *ruleIndexes) lookup(matchAttrs []string, key value.List, rhsAttrs []string) (value.List, int64, LookupStatus, bool) {
	ri.mu.RLock()
	ix, ok := ri.indexes[ruleIndexKey(matchAttrs, rhsAttrs)]
	if !ok {
		ri.mu.RUnlock()
		return nil, 0, NoMatch, false
	}
	e, ok := ix.entries[key.Key()]
	ri.mu.RUnlock()
	if !ok {
		return nil, 0, NoMatch, true
	}
	if e.conflict {
		return nil, 0, Conflict, true
	}
	return e.rhs, e.witness, Unique, true
}

// registered lists the (Xm, Bm) pairs with indexes, sorted, for
// diagnostics.
func (ri *ruleIndexes) registered() []string {
	ri.mu.RLock()
	defer ri.mu.RUnlock()
	out := make([]string, 0, len(ri.indexes))
	for _, ix := range ri.indexes {
		out = append(out, strings.Join(ix.matchAttrs, ",")+"->"+strings.Join(ix.rhsAttrs, ","))
	}
	sort.Strings(out)
	return out
}

// PrepareRuleIndexes (re)builds the unique-RHS index of every rule in
// the set. Called by PrepareForRules; callers that mutate the
// underlying table directly must re-run it.
func (m *Store) PrepareRuleIndexes(rs *rule.Set) {
	rows := m.table.All()
	for _, r := range rs.Rules() {
		m.ruleIdx.build(r.MatchMasterAttrs(), r.SetMasterAttrs(), rows)
	}
}

// RegisteredRuleIndexes lists the built indexes (diagnostics).
func (m *Store) RegisteredRuleIndexes() []string { return m.ruleIdx.registered() }
