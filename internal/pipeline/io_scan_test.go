package pipeline

import (
	"bufio"
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"strings"
	"testing"
	"testing/iotest"

	"cerfix/internal/schema"
	"cerfix/internal/simd"
	"cerfix/internal/value"
)

// Differential suite for the simd-scanned sources: every decode —
// values AND error text — is pinned against the pure stdlib decoders
// the fast paths replaced, across adversarial inputs (quotes inside
// fields, escapes, multi-byte UTF-8 straddling 8-byte word
// boundaries, blank lines, torn final lines, wrong field counts,
// oversized lines) and across chunked readers that force every
// lineReader refill path. Both kernel tables run.

// refJSONLNext is the reference JSONL decoder: bufio.Scanner +
// encoding/json, the exact shape JSONLSource had before its fast path
// existed. Its outputs are authoritative for values and error text.
type refJSONL struct {
	sch  *schema.Schema
	sc   *bufio.Scanner
	line int
}

func newRefJSONL(sch *schema.Schema, r io.Reader) *refJSONL {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	return &refJSONL{sch: sch, sc: sc}
}

func (s *refJSONL) Next() (*schema.Tuple, error) {
	for s.sc.Scan() {
		s.line++
		line := s.sc.Bytes()
		if len(line) == 0 {
			continue
		}
		m := make(map[string]string)
		if err := json.Unmarshal(line, &m); err != nil {
			return nil, fmt.Errorf("jsonl line %d: %w", s.line, err)
		}
		tu, err := schema.TupleFromMap(s.sch, m)
		if err != nil {
			return nil, fmt.Errorf("jsonl line %d: %w", s.line, err)
		}
		return tu, nil
	}
	if err := s.sc.Err(); err != nil {
		return nil, err
	}
	return nil, io.EOF
}

// refCSV is the reference CSV decoder: the encoding/csv-only
// CSVSource implementation the fast path replaced.
type refCSV struct {
	cr        *csv.Reader
	colToAttr []int
	line      int
	tuple     schema.Tuple
}

func newRefCSV(sch *schema.Schema, r io.Reader) (*refCSV, error) {
	cr := csv.NewReader(r)
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("pipeline: reading csv header: %w", err)
	}
	colToAttr := make([]int, len(header))
	seen := make(map[string]bool)
	for i, h := range header {
		idx, ok := sch.Index(h)
		if !ok {
			return nil, fmt.Errorf("pipeline: csv column %q not in schema %s", h, sch.Name())
		}
		if seen[h] {
			return nil, fmt.Errorf("pipeline: duplicate csv column %q", h)
		}
		seen[h] = true
		colToAttr[i] = idx
	}
	if len(seen) != sch.Len() {
		return nil, fmt.Errorf("pipeline: csv header has %d columns, schema %s has %d attributes",
			len(seen), sch.Name(), sch.Len())
	}
	cr.ReuseRecord = true
	s := &refCSV{cr: cr, colToAttr: colToAttr, line: 1}
	s.tuple = schema.Tuple{Schema: sch, Vals: make(value.List, sch.Len())}
	return s, nil
}

func (s *refCSV) Next() (*schema.Tuple, error) {
	rec, err := s.cr.Read()
	if err == io.EOF {
		return nil, io.EOF
	}
	s.line++
	if err != nil {
		return nil, fmt.Errorf("csv line %d: %w", s.line, err)
	}
	for i, cell := range rec {
		s.tuple.Vals[s.colToAttr[i]] = value.V(cell)
	}
	return &s.tuple, nil
}

type nexter interface {
	Next() (*schema.Tuple, error)
}

// step renders one Next call as a comparable string: the tuple's
// values, the error text, or EOF.
func step(s nexter) string {
	tu, err := s.Next()
	if err == io.EOF {
		return "EOF"
	}
	if err != nil {
		return "err: " + err.Error()
	}
	return fmt.Sprintf("tuple: %q", tu.Vals)
}

// drain compares two decoders call by call until both hit EOF, with a
// step cap so a divergence can't loop forever.
func drainCompare(t *testing.T, label string, got, want nexter) {
	t.Helper()
	for i := 0; i < 10000; i++ {
		g, w := step(got), step(want)
		if g != w {
			t.Fatalf("%s: step %d diverged:\n got:  %s\n want: %s", label, i, g, w)
		}
		if g == "EOF" {
			return
		}
	}
	t.Fatalf("%s: no EOF within step cap", label)
}

// readers wraps the input in progressively nastier readers, forcing
// lineReader refill boundaries at arbitrary byte positions.
func readers(s string) map[string]func() io.Reader {
	return map[string]func() io.Reader{
		"whole":   func() io.Reader { return strings.NewReader(s) },
		"onebyte": func() io.Reader { return iotest.OneByteReader(strings.NewReader(s)) },
		"half":    func() io.Reader { return iotest.HalfReader(strings.NewReader(s)) },
	}
}

func scanSchema(t *testing.T) *schema.Schema {
	t.Helper()
	sch, err := schema.New("T", schema.Str("a"), schema.Str("b"), schema.Str("c"))
	if err != nil {
		t.Fatal(err)
	}
	return sch
}

func withKernels(t *testing.T, f func(t *testing.T)) {
	t.Helper()
	defer simd.Reset()
	for _, k := range []string{simd.KernelPortable, simd.KernelNative} {
		if err := simd.Select(k); err != nil {
			t.Fatal(err)
		}
		t.Run(k, f)
	}
}

func TestJSONLSourceDifferentialCurated(t *testing.T) {
	sch := scanSchema(t)
	inputs := []string{
		"",
		"\n\n\n",
		`{"a":"1","b":"2","c":"3"}` + "\n",
		`{"a":"1","b":"2","c":"3"}`, // torn final line
		`{"a":"1","b":"2","c":"3"}` + "\r\n" + `{"a":"x","b":"y","c":"z"}` + "\r\n",
		`{"a":"with \"escaped\" quotes","b":"2","c":"3"}` + "\n",
		`{"a":"é€","b":"2","c":"3"}` + "\n",
		`{"a":"é€ direct utf8","b":"2","c":"3"}` + "\n",
		// Multi-byte runes straddling 8-byte word boundaries at several
		// offsets.
		`{"a":"aé","b":"abcdefé","c":"abcdefgé"}` + "\n",
		`{"a":"abcdefg😀h","b":"€€€€","c":"x"}` + "\n",
		"{\"a\":\"\xff invalid utf8\",\"b\":\"2\",\"c\":\"3\"}\n",
		`{"a":"1"}` + "\n", // absent attrs -> null
		`{}` + "\n",
		`{"a":"1","a":"2","b":"3","c":"4"}` + "\n", // duplicate key last-wins
		`{"unknown":"1","a":"2"}` + "\n",
		`{"a":1,"b":"2","c":"3"}` + "\n", // non-string value
		`{"a":null,"b":"2","c":"3"}` + "\n",
		`{"a":"1","b":"2","c":"3"} trailing` + "\n",
		`not json at all` + "\n",
		`{"a":"unterminated` + "\n" + `{"a":"ok","b":"2","c":"3"}` + "\n",
		`  {  "a" : "spaced" , "b" : "2" , "c" : "3" }  ` + "\n",
		"{\"a\":\"tab\tcontrol\",\"b\":\"2\",\"c\":\"3\"}\n",
		`{"a":"", "b":"","c":""}` + "\n",
		strings.Repeat(`{"a":"r","b":"s","c":"t"}`+"\n", 500),
		`{"a":"` + strings.Repeat("long", 50000) + `","b":"2","c":"3"}` + "\n", // 200 KB value
	}
	withKernels(t, func(t *testing.T) {
		for i, in := range inputs {
			for rname, mk := range readers(in) {
				drainCompare(t, fmt.Sprintf("input %d reader %s", i, rname),
					NewJSONLSource(sch, mk()), newRefJSONL(sch, mk()))
			}
		}
	})
}

func TestJSONLSourceTooLong(t *testing.T) {
	sch := scanSchema(t)
	// One line over the 1 MiB cap: both decoders report
	// bufio.ErrTooLong bare.
	in := `{"a":"` + strings.Repeat("x", 1<<20) + `","b":"2","c":"3"}` + "\n"
	withKernels(t, func(t *testing.T) {
		drainCompareUntilErr(t, "toolong", NewJSONLSource(sch, strings.NewReader(in)), newRefJSONL(sch, strings.NewReader(in)))
	})
}

// drainCompareUntilErr compares steps until the first non-EOF error
// (or EOF) on both sides — for inputs where the decoders legitimately
// never reach EOF (sticky oversized-line errors).
func drainCompareUntilErr(t *testing.T, label string, got, want nexter) {
	t.Helper()
	for i := 0; i < 10000; i++ {
		g, w := step(got), step(want)
		if g != w {
			t.Fatalf("%s: step %d diverged:\n got:  %s\n want: %s", label, i, g, w)
		}
		if g == "EOF" || strings.HasPrefix(g, "err: ") {
			return
		}
	}
	t.Fatalf("%s: no terminal step within cap", label)
}

func TestJSONLSourceDifferentialRandom(t *testing.T) {
	sch := scanSchema(t)
	keys := []string{"a", "b", "c", "zz"}
	frags := []string{
		"plain", "", "x", `\"`, `\\`, `é`, "é", "€", "😀", "\xff", "\xc3",
		"word boundary pad", "1234567", "12345678", "123456789", "\\t", "	",
	}
	rng := rand.New(rand.NewSource(23))
	var b strings.Builder
	lineFor := func() string {
		switch rng.Intn(10) {
		case 0:
			return "" // blank
		case 1:
			return "garbage{"
		default:
			var sb strings.Builder
			sb.WriteByte('{')
			n := rng.Intn(4)
			for i := 0; i < n; i++ {
				if i > 0 {
					sb.WriteByte(',')
				}
				fmt.Fprintf(&sb, "%q:", keys[rng.Intn(len(keys))])
				if rng.Intn(8) == 0 {
					sb.WriteString("17") // non-string value
				} else {
					sb.WriteByte('"')
					for j := rng.Intn(4); j > 0; j-- {
						sb.WriteString(frags[rng.Intn(len(frags))])
					}
					sb.WriteByte('"')
				}
			}
			sb.WriteByte('}')
			return sb.String()
		}
	}
	for i := 0; i < 400; i++ {
		b.WriteString(lineFor())
		if rng.Intn(20) != 0 || i < 399 { // occasionally torn final line
			if rng.Intn(6) == 0 {
				b.WriteString("\r\n")
			} else {
				b.WriteByte('\n')
			}
		}
	}
	in := b.String()
	withKernels(t, func(t *testing.T) {
		for rname, mk := range readers(in) {
			drainCompare(t, "random/"+rname, NewJSONLSource(sch, mk()), newRefJSONL(sch, mk()))
		}
	})
}

// csvPair builds both decoders, comparing constructor errors too.
func csvPair(t *testing.T, label string, sch *schema.Schema, in string, mk func() io.Reader) (nexter, nexter, bool) {
	t.Helper()
	got, gerr := NewCSVSource(sch, mk())
	want, werr := newRefCSV(sch, mk())
	gs, ws := "nil", "nil"
	if gerr != nil {
		gs = gerr.Error()
	}
	if werr != nil {
		ws = werr.Error()
	}
	if gs != ws {
		t.Fatalf("%s: constructor diverged:\n got:  %s\n want: %s", label, gs, ws)
	}
	if gerr != nil {
		return nil, nil, false
	}
	return got, want, true
}

func TestCSVSourceDifferentialCurated(t *testing.T) {
	sch := scanSchema(t)
	inputs := []string{
		"",
		"a,b,c\n",
		"a,b,c\n1,2,3\n4,5,6\n",
		"a,b,c\n1,2,3",     // torn final line
		"a,b,c\n1,2,3\r\n", // CRLF
		"a,b,c\r\n1,2,3\r\n4,5,6\r\n",
		"a,b,c\n1,2,3\r", // trailing \r before EOF
		"a,b,c\n\n\n1,2,3\n\n4,5,6\n",
		"a,b,c\n1,2\n4,5,6\n",     // too few fields, then recovery
		"a,b,c\n1,2,3,4\n4,5,6\n", // too many fields
		"a,b,c\n\"quoted\",2,3\n4,5,6\n",
		"a,b,c\n1,va\"lue,3\n4,5,6\n", // bare quote -> ParseError
		"a,b,c\n\"multi\nline\",2,3\n4,5,6\n",
		"a,b,c\n\"esc\"\"aped\",2,3\n",
		"a,b,c\n\"unterminated,2,3\n",
		"\"a\",b,c\n1,2,3\n",    // quote in header: takeover from line 1
		"a,b,c\n1,2,3\n\"4\",5", // takeover on torn final line
		"a,b,c\n,,\n",
		"a,b,c\n \"x\",2,3\n",           // quote after space: bare-quote error
		"a,b,c\n1,2,3\n" + "x\ry,2,3\n", // \r mid field stays
		"x,y,z\n1,2,3\n",                // unknown columns
		"a,b\n1,2\n",                    // missing column
		"a,b,c,a\n1,2,3,4\n",            // duplicate column
		"a,b,c\n" + strings.Repeat("1,2,3\n", 500),
		"a,b,c\n1,2," + strings.Repeat("w", 200000) + "\n", // long line forces window growth
	}
	withKernels(t, func(t *testing.T) {
		for i, in := range inputs {
			for rname, mk := range readers(in) {
				label := fmt.Sprintf("input %d reader %s", i, rname)
				got, want, ok := csvPair(t, label, sch, in, mk)
				if !ok {
					continue
				}
				drainCompare(t, label, got, want)
			}
		}
	})
}

func TestCSVSourceDifferentialRandom(t *testing.T) {
	sch := scanSchema(t)
	rng := rand.New(rand.NewSource(29))
	cells := []string{"x", "", "hello", "with space", "semi;colon", "tab\there",
		"café", "naïve€", "1234567", "12345678", "emoji😀"}
	cell := func() string {
		c := cells[rng.Intn(len(cells))]
		switch rng.Intn(12) {
		case 0:
			return `"` + strings.ReplaceAll(c, `"`, `""`) + `"` // quoted
		case 1:
			return `"` + c + "\n" + c + `"` // quoted multi-line
		case 2:
			return c + `"` + c // bare quote -> error
		default:
			return c
		}
	}
	var b strings.Builder
	b.WriteString("a,b,c")
	if rng.Intn(2) == 0 {
		b.WriteString("\r\n")
	} else {
		b.WriteByte('\n')
	}
	for i := 0; i < 300; i++ {
		n := 3
		if rng.Intn(15) == 0 {
			n = 1 + rng.Intn(5) // field-count errors
		}
		if rng.Intn(15) == 0 {
			// blank line
		} else {
			for j := 0; j < n; j++ {
				if j > 0 {
					b.WriteByte(',')
				}
				b.WriteString(cell())
			}
		}
		switch rng.Intn(8) {
		case 0:
			b.WriteString("\r\n")
		case 1:
			if i == 299 {
				continue // torn final line
			}
			b.WriteByte('\n')
		default:
			b.WriteByte('\n')
		}
	}
	in := b.String()
	withKernels(t, func(t *testing.T) {
		for rname, mk := range readers(in) {
			label := "random/" + rname
			got, want, ok := csvPair(t, label, sch, in, mk)
			if !ok {
				continue
			}
			drainCompare(t, label, got, want)
		}
	})
}
