package cerfix

import (
	"strings"
	"testing"

	"cerfix/internal/dataset"
)

func demoSystem(t *testing.T) *System {
	t.Helper()
	sys, err := New(dataset.CustSchema(), dataset.PersonSchema(), dataset.DemoRulesDSL)
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range dataset.DemoMasterRows() {
		if err := sys.AddMasterRow(row.Strings()...); err != nil {
			t.Fatal(err)
		}
	}
	return sys
}

func TestNewValidatesDSL(t *testing.T) {
	if _, err := New(dataset.CustSchema(), dataset.PersonSchema(), "broken"); err == nil {
		t.Fatal("broken DSL accepted")
	}
	if _, err := New(dataset.CustSchema(), dataset.PersonSchema(),
		"x: match zip~zip set bogus := AC"); err == nil {
		t.Fatal("rule referencing unknown attribute accepted")
	}
}

func TestSchemaAccessors(t *testing.T) {
	sys := demoSystem(t)
	if sys.InputSchema().Name() != "CUST" || sys.MasterSchema().Name() != "PERSON" {
		t.Fatal("schema accessors wrong")
	}
	if sys.Master().Len() != 3 {
		t.Fatalf("master rows = %d", sys.Master().Len())
	}
}

func TestStringAttrsAndNewSchema(t *testing.T) {
	attrs := StringAttrs("a", "b")
	sch, err := NewSchema("R", attrs...)
	if err != nil {
		t.Fatal(err)
	}
	if sch.Len() != 2 || sch.Attr(0).Name != "a" {
		t.Fatal("schema built wrong")
	}
}

func TestEndToEndSessionFlow(t *testing.T) {
	sys := demoSystem(t)
	// Consistency (E1).
	rep := sys.CheckConsistency()
	if !rep.Consistent() {
		t.Fatalf("demo inconsistent: %v", rep.Errors())
	}
	// Regions.
	regions := sys.Regions(3)
	if len(regions) == 0 || regions[0].Size() != 4 {
		t.Fatalf("regions = %v", regions)
	}
	// Session (Fig. 3 walkthrough through the facade).
	sess, err := sys.NewSession(dataset.DemoInputFig3().Map())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sess.Validate(map[string]string{
		"AC": "201", "phn": "075568485", "type": "2", "item": "DVD",
	}); err != nil {
		t.Fatal(err)
	}
	if got := strings.Join(sess.Suggestion(), ","); got != "zip" {
		t.Fatalf("suggestion = %q", got)
	}
	if _, err := sess.ValidateSuggested(); err != nil {
		t.Fatal(err)
	}
	if !sess.Certain() {
		t.Fatal("session not certain")
	}
	if !sess.Tuple.Equal(dataset.DemoGroundTruthFig3()) {
		t.Fatalf("tuple = %v", sess.Tuple)
	}
	// Audit.
	if sys.Audit().Len() == 0 {
		t.Fatal("audit log empty")
	}
	if _, ok := sys.Audit().CellProvenance(sess.ID, "FN"); !ok {
		t.Fatal("FN provenance missing")
	}
}

func TestFixNonInteractive(t *testing.T) {
	sys := demoSystem(t)
	fixed, res := sys.Fix(dataset.DemoInputExample1(), []string{"zip"})
	if fixed.Get("AC") != "131" {
		t.Fatalf("AC = %q", fixed.Get("AC"))
	}
	if len(res.Conflicts) != 0 {
		t.Fatalf("conflicts: %v", res.Conflicts)
	}
	// Original untouched.
	if dataset.DemoInputExample1().Get("AC") != "020" {
		t.Fatal("input mutated")
	}
}

func TestRuleManagement(t *testing.T) {
	sys := demoSystem(t)
	if !strings.Contains(sys.Rules(), "phi1:") {
		t.Fatalf("Rules = %q", sys.Rules())
	}
	if err := sys.AddRule(`extra: match zip~zip set FN := FN`); err != nil {
		t.Fatal(err)
	}
	if sys.RuleSet().Len() != 10 {
		t.Fatalf("rules = %d", sys.RuleSet().Len())
	}
	// Invalid rule rejected without corrupting the set.
	if err := sys.AddRule(`bad: match zip~zip set bogus := FN`); err == nil {
		t.Fatal("invalid rule accepted")
	}
	if err := sys.AddRule(`alsobad ~ nonsense`); err == nil {
		t.Fatal("unparsable rule accepted")
	}
	if sys.RuleSet().Len() != 10 {
		t.Fatalf("rules after failed add = %d", sys.RuleSet().Len())
	}
	if !sys.RemoveRule("extra") || sys.RemoveRule("extra") {
		t.Fatal("RemoveRule semantics wrong")
	}
	if sys.RuleSet().Len() != 9 {
		t.Fatalf("rules after remove = %d", sys.RuleSet().Len())
	}
}

func TestRuleChangeInvalidatesMonitor(t *testing.T) {
	sys := demoSystem(t)
	// Force the monitor to exist, then change rules: a new session
	// must reflect the updated rule set.
	if _, err := sys.NewSession(dataset.DemoInputFig3().Map()); err != nil {
		t.Fatal(err)
	}
	// With the zip rules gone, zip can no longer unlock AC/str/city.
	for _, id := range []string{"phi1", "phi2", "phi3"} {
		if !sys.RemoveRule(id) {
			t.Fatalf("remove %s failed", id)
		}
	}
	fixed, _ := sys.Fix(dataset.DemoInputExample1(), []string{"zip"})
	if fixed.Get("AC") != "020" {
		t.Fatal("removed rule still fired")
	}
}

func TestLoadMasterCSV(t *testing.T) {
	sys, err := New(dataset.CustSchema(), dataset.PersonSchema(), dataset.DemoRulesDSL)
	if err != nil {
		t.Fatal(err)
	}
	csv := "FN,LN,AC,Hphn,Mphn,str,city,zip,DOB,gender\n" +
		"Robert,Brady,131,6884563,079172485,501 Elm St,Edi,EH8 4AH,11/11/55,M\n"
	if err := sys.LoadMasterCSV(strings.NewReader(csv)); err != nil {
		t.Fatal(err)
	}
	if sys.Master().Len() != 1 {
		t.Fatalf("master = %d", sys.Master().Len())
	}
	fixed, _ := sys.Fix(dataset.DemoInputExample1(), []string{"zip"})
	if fixed.Get("AC") != "131" {
		t.Fatal("fix after CSV load failed")
	}
	if err := sys.LoadMasterCSV(strings.NewReader("bad header\nrow\n")); err == nil {
		t.Fatal("bad CSV accepted")
	}
}

func TestSetRegionOptions(t *testing.T) {
	sys := demoSystem(t)
	sys.SetRegionOptions(&RegionOptions{Greedy: true, K: 2})
	regions := sys.Regions(2)
	if len(regions) == 0 {
		t.Fatal("no greedy regions")
	}
	// Sessions still work with greedy regions.
	sess, err := sys.NewSession(dataset.DemoGroundTruthFig3().Map())
	if err != nil {
		t.Fatal(err)
	}
	if len(sess.Suggestion()) == 0 {
		t.Fatal("no suggestion")
	}
}

func TestParseRulesHelper(t *testing.T) {
	rs, err := ParseRules(dataset.DemoRulesDSL)
	if err != nil {
		t.Fatal(err)
	}
	if rs.Len() != 9 {
		t.Fatalf("rules = %d", rs.Len())
	}
	if _, err := ParseRules("nope"); err == nil {
		t.Fatal("bad DSL accepted")
	}
}

// Adding master rows invalidates the cached monitor: new entities
// become coverable without rebuilding the system.
func TestMasterGrowthRefreshesRegions(t *testing.T) {
	sys := demoSystem(t)
	// Force monitor construction.
	if _, err := sys.NewSession(dataset.DemoInputFig3().Map()); err != nil {
		t.Fatal(err)
	}
	// A new entity unknown to the current tableaux.
	if err := sys.AddMasterRow(
		"Zoe", "New", "117", "5550001", "075550002",
		"1 New Rd", "Brs", "BS1 1AA", "01/01/90", "F"); err != nil {
		t.Fatal(err)
	}
	// A clean tuple of the new entity must now be covered by the
	// refreshed smallest region.
	tuple := map[string]string{
		"FN": "Zoe", "LN": "New", "AC": "117", "phn": "075550002", "type": "2",
		"str": "1 New Rd", "city": "Brs", "zip": "BS1 1AA", "item": "CD",
	}
	sess, err := sys.NewSession(tuple)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sess.ValidateSuggested(); err != nil {
		t.Fatal(err)
	}
	if !sess.Certain() {
		t.Fatalf("new entity not fixable after master growth: remaining %v", sess.Remaining())
	}
}

// The audit log survives a save/load cycle of the *master data* only —
// the log itself is runtime state and stays with the in-memory system.
func TestAuditCSVThroughFacade(t *testing.T) {
	sys := demoSystem(t)
	sess, err := sys.NewSession(dataset.DemoInputFig3().Map())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sess.Validate(map[string]string{"zip": "NW1 6XE"}); err != nil {
		t.Fatal(err)
	}
	var buf strings.Builder
	if err := sys.Audit().WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "phi1") {
		t.Fatalf("audit export missing rule provenance:\n%s", buf.String())
	}
}

func TestDiscoverRulesFacade(t *testing.T) {
	// Same-schema system (HOSP-style): discovery works.
	sch, err := NewSchema("R", StringAttrs("k", "a", "b")...)
	if err != nil {
		t.Fatal(err)
	}
	sys, err := New(sch, sch, "seed: match k~k set a := a")
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range [][]string{
		{"K1", "A1", "B1"}, {"K2", "A2", "B2"}, {"K3", "A3", "B3"},
	} {
		if err := sys.AddMasterRow(row...); err != nil {
			t.Fatal(err)
		}
	}
	rules, err := sys.DiscoverRules(1)
	if err != nil {
		t.Fatal(err)
	}
	if len(rules) == 0 {
		t.Fatal("nothing discovered")
	}
	// k -> a and k -> b must be among them; installing one works.
	installed := false
	for _, r := range rules {
		if len(r.Match) == 1 && r.Match[0].Input == "k" {
			r2 := r.Clone()
			r2.ID = "disc_" + r.ID
			if err := sys.AddRule(r2.String()); err != nil {
				t.Fatalf("installing %s: %v", r2, err)
			}
			installed = true
			break
		}
	}
	if !installed {
		t.Fatalf("no key-based rule discovered: %v", rules)
	}
	// Mismatched schemas are rejected.
	sysDemo := demoSystem(t)
	if _, err := sysDemo.DiscoverRules(1); err == nil {
		t.Fatal("discovery on mismatched schemas accepted")
	}
}
