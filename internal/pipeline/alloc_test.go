//go:build !race

package pipeline

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"runtime"
	"testing"
)

// The steady-state allocation contract of the recycled pipeline: a
// batch run over N tuples allocates O(window) — per-run channels,
// goroutines and arenas — NOT O(N). Amortized over a few thousand
// tuples that must stay under a small constant per tuple on the slice
// and JSONL paths (the acceptance gate: ≤ 2 allocs/tuple; the chase
// itself contributes zero once arenas are warm, the JSONL decoder one
// backing string per line). Excluded under the race detector, whose
// instrumentation allocates.

// mallocs reads the cumulative heap-allocation count.
func mallocs() uint64 {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return ms.Mallocs
}

// measureAllocsPerTuple runs fn twice — once to warm the chaser pool
// and amortizable state — and returns allocations per tuple of the
// second run.
func measureAllocsPerTuple(t *testing.T, tuples int, fn func()) float64 {
	t.Helper()
	fn() // warm: chaser pool, sink schema binding, GC steady state
	runtime.GC()
	m0 := mallocs()
	fn()
	return float64(mallocs()-m0) / float64(tuples)
}

const allocsPerTupleBudget = 2.0

// TestPipelineSteadyStateAllocsSlice gates the slice path: tuples in
// memory, results discarded after the per-result bookkeeping.
func TestPipelineSteadyStateAllocsSlice(t *testing.T) {
	eng, dirty, seed := workloadEngine(t, 50, 4000)
	for _, workers := range []int{1, 4} {
		run := func() {
			if _, err := Run(context.Background(), eng, seed, NewSliceSource(dirty), Discard,
				&Options{Workers: workers}); err != nil {
				t.Fatal(err)
			}
		}
		if avg := measureAllocsPerTuple(t, len(dirty), run); avg > allocsPerTupleBudget {
			t.Errorf("slice path, %d workers: %.2f allocs/tuple, budget %.1f", workers, avg, allocsPerTupleBudget)
		}
	}
}

// TestPipelineSteadyStateAllocsJSONL gates the full streaming JSONL
// path — decode through the reusing source, chase, encode through the
// append-style sink.
func TestPipelineSteadyStateAllocsJSONL(t *testing.T) {
	eng, dirty, seed := workloadEngine(t, 50, 4000)
	sch := dirty[0].Schema
	var data bytes.Buffer
	enc := json.NewEncoder(&data)
	for _, tu := range dirty {
		if err := enc.Encode(tu.Map()); err != nil {
			t.Fatal(err)
		}
	}
	for _, workers := range []int{1, 4} {
		sink := NewJSONLSink(io.Discard)
		run := func() {
			src := NewJSONLSource(sch, bytes.NewReader(data.Bytes()))
			if _, err := Run(context.Background(), eng, seed, src, sink,
				&Options{Workers: workers}); err != nil {
				t.Fatal(err)
			}
		}
		if avg := measureAllocsPerTuple(t, len(dirty), run); avg > allocsPerTupleBudget {
			t.Errorf("jsonl path, %d workers: %.2f allocs/tuple, budget %.1f", workers, avg, allocsPerTupleBudget)
		}
	}
}

// TestChaseIntoZeroAllocSteadyState pins the kernel-side half of the
// contract in isolation: once a batch slot's buffers are warm,
// ChaseInto performs zero heap allocations per tuple (the arena
// generalization of the Chaser's own scratch result).
func TestChaseIntoZeroAllocSteadyState(t *testing.T) {
	eng, dirty, seed := workloadEngine(t, 20, 64)
	ch := eng.AcquireChaser()
	defer ch.Release()
	b := newBatch(16)
	warm := func() {
		for i := 0; i < 16; i++ {
			ch.ChaseInto(&b.chase[i], dirty[i%len(dirty)], seed)
		}
	}
	warm()
	avg := testing.AllocsPerRun(100, warm)
	if avg != 0 {
		t.Errorf("warm ChaseInto allocates %v per 16-tuple batch, want 0", avg)
	}
}
