package cerfix

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"cerfix/internal/dataset"
	"cerfix/internal/faultfs"
)

func TestSaveLoadRoundTrip(t *testing.T) {
	sys := demoSystem(t)
	dir := filepath.Join(t.TempDir(), "instance")
	if err := sys.Save(dir); err != nil {
		t.Fatal(err)
	}
	for _, f := range []string{"manifest.json", "rules.txt", "master.csv"} {
		if _, err := os.Stat(filepath.Join(dir, f)); err != nil {
			t.Fatalf("missing %s: %v", f, err)
		}
	}
	loaded, err := Load(dir)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.InputSchema().String() != sys.InputSchema().String() {
		t.Fatalf("input schema: %s vs %s", loaded.InputSchema(), sys.InputSchema())
	}
	if loaded.MasterSchema().String() != sys.MasterSchema().String() {
		t.Fatal("master schema mismatch")
	}
	if loaded.Rules() != sys.Rules() {
		t.Fatalf("rules mismatch:\n%s\nvs\n%s", loaded.Rules(), sys.Rules())
	}
	if loaded.Master().Len() != sys.Master().Len() {
		t.Fatalf("master rows: %d vs %d", loaded.Master().Len(), sys.Master().Len())
	}
	// The loaded system is fully functional: the Fig. 3 walkthrough
	// runs on it. (Note: the loaded input schema is a distinct
	// instance, so tuples must be built against it.)
	sess, err := loaded.NewSession(dataset.DemoInputFig3().Map())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sess.Validate(map[string]string{
		"AC": "201", "phn": "075568485", "type": "2", "item": "DVD", "zip": "NW1 6XE",
	}); err != nil {
		t.Fatal(err)
	}
	if !sess.Certain() {
		t.Fatal("loaded system could not complete the walkthrough")
	}
	if sess.Tuple.Get("FN") != "Mark" {
		t.Fatalf("FN = %q", sess.Tuple.Get("FN"))
	}
}

func TestLoadErrors(t *testing.T) {
	if _, err := Load(filepath.Join(t.TempDir(), "nope")); err == nil {
		t.Fatal("missing dir accepted")
	}
	// Corrupt manifest.
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "manifest.json"), []byte("{broken"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(dir); err == nil {
		t.Fatal("broken manifest accepted")
	}
	// Valid manifest but missing rules.
	sys := demoSystem(t)
	dir2 := filepath.Join(t.TempDir(), "partial")
	if err := sys.Save(dir2); err != nil {
		t.Fatal(err)
	}
	if err := os.Remove(filepath.Join(dir2, "rules.txt")); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(dir2); err == nil {
		t.Fatal("missing rules accepted")
	}
	// Missing master CSV.
	dir3 := filepath.Join(t.TempDir(), "partial2")
	if err := sys.Save(dir3); err != nil {
		t.Fatal(err)
	}
	if err := os.Remove(filepath.Join(dir3, "master.csv")); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(dir3); err == nil {
		t.Fatal("missing master accepted")
	}
}

func TestSaveLoadPreservesDomains(t *testing.T) {
	input, err := NewSchema("IN",
		Attribute{Name: "s"},
		Attribute{Name: "n", Domain: 1 /* DInt */},
	)
	if err != nil {
		t.Fatal(err)
	}
	masterSch, err := NewSchema("M", StringAttrs("s", "n")...)
	if err != nil {
		t.Fatal(err)
	}
	sys, err := New(input, masterSch, "r1: match s~s set n := n")
	if err != nil {
		t.Fatal(err)
	}
	dir := filepath.Join(t.TempDir(), "typed")
	if err := sys.Save(dir); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(dir)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.InputSchema().Domain("n").String() != "int" {
		t.Fatalf("domain lost: %v", loaded.InputSchema().Domain("n"))
	}
}

// A save that fails mid-commit must leave the previously saved
// instance intact and loadable: Save stages the whole instance in a
// sibling directory and commits with two renames, restoring (or
// leaving a .bak that Load falls back to) when a rename fails.
func TestSaveFailureLeavesPreviousInstanceLoadable(t *testing.T) {
	sys := demoSystem(t)
	dir := filepath.Join(t.TempDir(), "instance")
	if err := sys.Save(dir); err != nil {
		t.Fatal(err)
	}
	before, err := Load(dir)
	if err != nil {
		t.Fatal(err)
	}
	wantRows := before.Master().Len()
	if err := sys.AddMasterRow(make([]string, sys.MasterSchema().Len())...); err != nil {
		t.Fatal(err)
	}
	// A lone insert would take the WAL-append path and never reach the
	// commit renames; drop the cursor to force the checkpoint path this
	// test exists to crash-inject (a fresh process behaves the same).
	sys.walCursor = nil

	// Case 1: the staging→dir rename fails; Save restores the backup.
	inj := faultfs.NewInjector(faultfs.OS)
	inj.SetFault(func(op faultfs.Op, path string) error {
		if op == faultfs.OpRename && path == dir+".saving" {
			return fmt.Errorf("injected rename failure")
		}
		return nil
	})
	sys.fs = inj
	if err := sys.Save(dir); err == nil {
		t.Fatal("save succeeded despite injected commit failure")
	}
	after, err := Load(dir)
	if err != nil {
		t.Fatalf("previous instance not loadable after failed commit: %v", err)
	}
	if after.Master().Len() != wantRows || after.Rules() != before.Rules() {
		t.Fatalf("previous instance changed: %d rows, want %d", after.Master().Len(), wantRows)
	}

	// Case 2: the restore rename fails too (the crash-between-renames
	// window); Load must fall back to the .bak sibling.
	inj = faultfs.NewInjector(faultfs.OS)
	inj.SetFault(func(op faultfs.Op, path string) error {
		if op == faultfs.OpRename && (path == dir+".saving" || path == dir+".bak") {
			return fmt.Errorf("injected rename failure")
		}
		return nil
	})
	sys.fs = inj
	if err := sys.Save(dir); err == nil {
		t.Fatal("save succeeded despite injected commit failure")
	}
	if _, err := os.Stat(filepath.Join(dir, "manifest.json")); !os.IsNotExist(err) {
		t.Fatalf("expected dir to be mid-swap, stat err = %v", err)
	}
	after, err = Load(dir)
	if err != nil {
		t.Fatalf("backup fallback not loadable: %v", err)
	}
	if after.Master().Len() != wantRows || after.Rules() != before.Rules() {
		t.Fatalf("backup instance changed: %d rows, want %d", after.Master().Len(), wantRows)
	}
	if info := after.LoadInfo(); info == nil || !info.UsedBackup || info.Dir != dir+".bak" {
		t.Fatalf("backup fallback not reported in provenance: %+v", info)
	}

	// Heal: with renames working again the next save lands the new
	// state atomically and clears staging and backup.
	sys.fs = nil
	if err := sys.Save(dir); err != nil {
		t.Fatal(err)
	}
	final, err := Load(dir)
	if err != nil {
		t.Fatal(err)
	}
	if final.Master().Len() != wantRows+1 {
		t.Fatalf("new save lost the added row: %d rows, want %d", final.Master().Len(), wantRows+1)
	}
	for _, leftover := range []string{dir + ".saving", dir + ".bak"} {
		if _, err := os.Stat(leftover); !os.IsNotExist(err) {
			t.Fatalf("leftover %q after successful save", leftover)
		}
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if e.Name() != "manifest.json" && e.Name() != "rules.txt" && e.Name() != "master.csv" {
			t.Fatalf("unexpected leftover %q in instance dir", e.Name())
		}
	}
}
