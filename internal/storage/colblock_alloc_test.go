//go:build !race

package storage

import (
	"fmt"
	"runtime"
	"testing"

	"cerfix/internal/value"
)

// TestPackColumnarAllocsOColumns guards the packing cost model:
// converting a shard allocates O(columns) — the ids slice, the syms
// block and two headers — never O(rows). With the dictionary primed
// (every cell value already interned), packing 20k rows across 64
// shards must stay within a few hundred allocations; a per-row
// allocation anywhere in the pack path blows past the bound by two
// orders of magnitude.
//
// Excluded from -race runs like the other steady-state alloc guards:
// the race runtime adds bookkeeping allocations.
func TestPackColumnarAllocsOColumns(t *testing.T) {
	tb := NewTable(personSchema(t))
	const rows = 20000
	pool := []value.V{"Robert", "Mark", "", "Luth", "W1B 1JL"}
	for i := 0; i < rows; i++ {
		if _, err := tb.InsertValues(
			pool[i%len(pool)],
			value.V(fmt.Sprintf("uniq-%d", i%512)),
			pool[(i/2)%len(pool)],
		); err != nil {
			t.Fatal(err)
		}
	}
	// Prime the dictionary so interning during the measured pack is
	// all hits (real workloads amortize dictionary growth across the
	// life of the table; the guard isolates the packing layout cost).
	for i := 0; i < 512; i++ {
		tb.Dict().Intern(fmt.Sprintf("uniq-%d", i))
	}
	for _, v := range pool {
		tb.Dict().InternV(v)
	}

	tb.SetPackMinRows(1)
	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	packed := tb.PackColumnar(0)
	runtime.ReadMemStats(&after)
	if packed == 0 {
		t.Fatal("nothing packed")
	}
	allocs := after.Mallocs - before.Mallocs
	// 64 shards × ~5 allocations each, plus slack for the runtime.
	const budget = 64*8 + 128
	if allocs > budget {
		t.Fatalf("PackColumnar allocated %d objects for %d rows (budget %d): packing is not O(columns)",
			allocs, rows, budget)
	}
	t.Logf("packed %d shards, %d rows, %d allocs", packed, rows, allocs)
}
