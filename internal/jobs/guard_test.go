package jobs

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"cerfix/internal/faultfs"
	"cerfix/internal/guard"
)

// The runtime-guardrail suite: chaos-injected stalls and panics (the
// guard seam) through the whole jobs stack, deterministic under -race.

// A worker stalled at tuple K is cancelled by the watchdog within the
// stall timeout and the job is re-queued; the second attempt — the
// stall budget spent — runs clean and produces the byte-identical
// artifact. Swept over several K so the stall position (first tuple,
// mid-chunk, chunk boundary) doesn't matter.
func TestStallWatchdogRequeuesByteIdentical(t *testing.T) {
	guard.SetChaos(true)
	defer guard.SetChaos(false)

	for _, k := range []int{0, 5, 17} {
		t.Run(fmt.Sprintf("stall_at_%d", k), func(t *testing.T) {
			eng, dirty, validated := testWorkload(t, 30, 24)
			dirty[k].Vals[0] = guard.ChaosStallValue
			want := expectedArtifact(t, eng, dirty, validated)

			cfg := faultConfig(t.TempDir(), eng, nil)
			cfg.StallTimeout = 50 * time.Millisecond
			m, err := Open(cfg)
			if err != nil {
				t.Fatal(err)
			}
			defer m.Close(context.Background())

			guard.ArmStalls(1) // first attempt stalls, the re-run passes
			j, err := submitTuples(m, validated, dirty)
			if err != nil {
				t.Fatal(err)
			}
			got := waitTerminal(t, m, j.ID)
			if got.State != StateDone {
				t.Fatalf("job ended %s (%s), want done after re-queue", got.State, got.Error)
			}
			if got.Attempts < 2 {
				t.Fatalf("attempts = %d, want >= 2 (stall must have re-queued)", got.Attempts)
			}
			if st := m.Stats(); st.Stalls < 1 {
				t.Fatalf("Stats().Stalls = %d, want >= 1", st.Stalls)
			}
			path, err := m.ResultsPath(j.ID)
			if err != nil {
				t.Fatal(err)
			}
			assertArtifact(t, path, want, "post-stall re-run")
		})
	}
}

// A job that stalls on every attempt exhausts MaxAttempts and fails
// with the stall reason — bounded attempts, never an infinite
// requeue loop.
func TestStallExhaustsAttempts(t *testing.T) {
	guard.SetChaos(true)
	defer guard.SetChaos(false)
	guard.ArmStalls(-1) // every attempt stalls

	eng, dirty, validated := testWorkload(t, 20, 8)
	dirty[3].Vals[0] = guard.ChaosStallValue

	cfg := faultConfig(t.TempDir(), eng, nil)
	cfg.StallTimeout = 30 * time.Millisecond
	cfg.MaxAttempts = 2
	m, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close(context.Background())

	j, err := submitTuples(m, validated, dirty)
	if err != nil {
		t.Fatal(err)
	}
	got := waitTerminal(t, m, j.ID)
	if got.State != StateFailed {
		t.Fatalf("job ended %s, want failed after attempts exhausted", got.State)
	}
	if !strings.Contains(got.Error, "stalled") {
		t.Fatalf("error = %q, want a stall reason", got.Error)
	}
	if got.Attempts != 2 {
		t.Fatalf("attempts = %d, want exactly MaxAttempts (2)", got.Attempts)
	}
	if st := m.Stats(); st.Stalls != 2 {
		t.Fatalf("Stats().Stalls = %d, want 2", st.Stalls)
	}
}

// A panic inside the run — a poisoned tuple — fails the job with the
// stack journaled to job.json, is never retried, and leaves the
// manager serving: the next job completes normally.
func TestRunnerPanicFailsJobWithJournaledStack(t *testing.T) {
	guard.SetChaos(true)
	defer guard.SetChaos(false)

	eng, dirty, validated := testWorkload(t, 20, 8)
	poisoned := dirty[:6]
	poisoned[4].Vals[0] = guard.ChaosPanicValue

	dir := t.TempDir()
	m, err := Open(faultConfig(dir, eng, nil))
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close(context.Background())

	j, err := submitTuples(m, validated, poisoned)
	if err != nil {
		t.Fatal(err)
	}
	got := waitTerminal(t, m, j.ID)
	if got.State != StateFailed {
		t.Fatalf("job ended %s, want failed", got.State)
	}
	if !strings.Contains(got.Error, "panic") {
		t.Fatalf("error = %q, want a panic reason", got.Error)
	}
	if got.Attempts != 1 {
		t.Fatalf("attempts = %d; a panic must never retry", got.Attempts)
	}
	if got.PanicStack == "" || !strings.Contains(got.PanicStack, "goroutine") {
		t.Fatalf("PanicStack = %q, want a goroutine stack", got.PanicStack)
	}
	// The stack must be in the durable journal, not just in memory.
	data, err := os.ReadFile(filepath.Join(dir, j.ID, "job.json"))
	if err != nil {
		t.Fatal(err)
	}
	rec, err := decodeJournal(data)
	if err != nil {
		t.Fatal(err)
	}
	if rec.PanicStack == "" {
		t.Fatal("journal has no panic_stack")
	}
	if st := m.Stats(); st.Panics != 1 {
		t.Fatalf("Stats().Panics = %d, want 1", st.Panics)
	}

	// The daemon's whole point: one poisoned job, next job fine.
	_, clean, _ := testWorkload(t, 20, 4)
	j2, err := submitTuples(m, validated, clean)
	if err != nil {
		t.Fatal(err)
	}
	if got := waitTerminal(t, m, j2.ID); got.State != StateDone {
		t.Fatalf("follow-up job ended %s (%s)", got.State, got.Error)
	}
}

// A panic injected inside a filesystem op — the faultfs twin of the
// guard chaos seam — takes the same isolation path: the job fails
// with the stack journaled and the manager keeps serving.
func TestFSPanicFailsJobWithJournaledStack(t *testing.T) {
	eng, dirty, validated := testWorkload(t, 20, 6)

	inj := faultfs.NewInjector(faultfs.OS)
	inj.PanicNth(faultfs.OpWrite, "results.jsonl", 1)
	dir := t.TempDir()
	m, err := Open(faultConfig(dir, eng, inj))
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close(context.Background())

	j, err := submitTuples(m, validated, dirty)
	if err != nil {
		t.Fatal(err)
	}
	got := waitTerminal(t, m, j.ID)
	if got.State != StateFailed {
		t.Fatalf("job ended %s (%s), want failed", got.State, got.Error)
	}
	if !strings.Contains(got.Error, "panic") || !strings.Contains(got.Error, "faultfs") {
		t.Fatalf("error = %q, want the injected faultfs panic", got.Error)
	}
	if got.PanicStack == "" {
		t.Fatal("no panic stack on the failed job")
	}
	data, err := os.ReadFile(filepath.Join(dir, j.ID, "job.json"))
	if err != nil {
		t.Fatal(err)
	}
	rec, err := decodeJournal(data)
	if err != nil {
		t.Fatal(err)
	}
	if rec.PanicStack == "" {
		t.Fatal("journal has no panic_stack")
	}

	// One-shot rule spent: the next job writes its artifact normally.
	_, clean, _ := testWorkload(t, 20, 4)
	j2, err := submitTuples(m, validated, clean)
	if err != nil {
		t.Fatal(err)
	}
	if got := waitTerminal(t, m, j2.ID); got.State != StateDone {
		t.Fatalf("follow-up job ended %s (%s)", got.State, got.Error)
	}
}

// A run past Config.JobTimeout is cancelled and journals as a
// terminal failure with the deadline reason. (Deadline expiry is
// deliberately terminal, not a re-queue: the job ran and was too big
// for the budget — the re-queue/byte-parity path is the stall test's.)
func TestJobDeadlineFailsTerminal(t *testing.T) {
	guard.SetChaos(true)
	defer guard.SetChaos(false)
	guard.ArmStalls(-1) // hold the run well past its deadline

	eng, dirty, validated := testWorkload(t, 20, 8)
	dirty[2].Vals[0] = guard.ChaosStallValue

	cfg := faultConfig(t.TempDir(), eng, nil)
	cfg.JobTimeout = 40 * time.Millisecond
	m, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close(context.Background())

	j, err := submitTuples(m, validated, dirty)
	if err != nil {
		t.Fatal(err)
	}
	got := waitTerminal(t, m, j.ID)
	if got.State != StateFailed {
		t.Fatalf("job ended %s, want failed on deadline", got.State)
	}
	if !strings.Contains(got.Error, "deadline") {
		t.Fatalf("error = %q, want the deadline reason", got.Error)
	}
	if st := m.Stats(); st.JobTimeoutMS != 40 {
		t.Fatalf("Stats().JobTimeoutMS = %d, want 40", st.JobTimeoutMS)
	}
}
