package md

import (
	"strings"
	"testing"

	"cerfix/internal/core"
	"cerfix/internal/dataset"
	"cerfix/internal/master"
	"cerfix/internal/rule"
	"cerfix/internal/schema"
)

func TestSimilarityOperators(t *testing.T) {
	eq := Similarity{Kind: SimEq}
	if !eq.Match("a", "a") || eq.Match("a", "b") {
		t.Fatal("SimEq wrong")
	}
	ed := Similarity{Kind: SimEdit, MaxDist: 1}
	if !ed.Match("Brady", "Brady") || !ed.Match("Brady", "Brady") {
		t.Fatal("SimEdit false negative")
	}
	if ed.Match("Brady", "Smith") {
		t.Fatal("SimEdit false positive")
	}
	pre := Similarity{Kind: SimPrefix}
	if !pre.Match("501 Elm", "501 Elm St") || !pre.Match("501  Elm St", "501 Elm") {
		t.Fatal("SimPrefix false negative")
	}
	if pre.Match("Baker St", "Elm St") {
		t.Fatal("SimPrefix false positive")
	}
	if !pre.Match("", "") || pre.Match("", "x") {
		t.Fatal("SimPrefix empty handling")
	}
}

func demoMD() *MD {
	return &MD{
		ID: "md1",
		Premise: []Clause{
			{Left: "phn", Right: "Mphn", Sim: Similarity{Kind: SimEq}},
		},
		Consequence: []Identify{
			{Left: "FN", Right: "FN"},
			{Left: "LN", Right: "LN"},
		},
	}
}

func TestValidate(t *testing.T) {
	input, masterSch := dataset.CustSchema(), dataset.PersonSchema()
	if err := demoMD().Validate(input, masterSch); err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name string
		mut  func(*MD)
	}{
		{"empty id", func(m *MD) { m.ID = "" }},
		{"empty premise", func(m *MD) { m.Premise = nil }},
		{"empty consequence", func(m *MD) { m.Consequence = nil }},
		{"bad premise left", func(m *MD) { m.Premise[0].Left = "bogus" }},
		{"bad premise right", func(m *MD) { m.Premise[0].Right = "bogus" }},
		{"bad consequence left", func(m *MD) { m.Consequence[0].Left = "bogus" }},
		{"bad consequence right", func(m *MD) { m.Consequence[0].Right = "bogus" }},
		{"negative threshold", func(m *MD) {
			m.Premise[0].Sim = Similarity{Kind: SimEdit, MaxDist: -1}
		}},
	}
	for _, c := range cases {
		m := demoMD()
		c.mut(m)
		if err := m.Validate(input, masterSch); err == nil {
			t.Errorf("%s accepted", c.name)
		}
	}
}

func TestMatchesAndFindMatches(t *testing.T) {
	st := master.New(dataset.PersonSchema())
	for _, row := range dataset.DemoMasterRows() {
		if _, err := st.InsertValues(row...); err != nil {
			t.Fatal(err)
		}
	}
	m := demoMD()
	in := dataset.DemoInputFig3() // phn = Mark Smith's mobile
	matches := m.FindMatches(in, st.All())
	if len(matches) != 1 || matches[0].Get("FN") != "Mark" {
		t.Fatalf("matches = %v", matches)
	}
	// Fuzzy premise: one digit typo in the phone still matches.
	fuzzy := demoMD()
	fuzzy.Premise[0].Sim = Similarity{Kind: SimEdit, MaxDist: 1}
	typo := in.Clone()
	typo.Set("phn", "075568486")
	if len(fuzzy.FindMatches(typo, st.All())) != 1 {
		t.Fatal("fuzzy match failed")
	}
	if len(m.FindMatches(typo, st.All())) != 0 {
		t.Fatal("exact match should fail on typo")
	}
}

func TestIsExact(t *testing.T) {
	m := demoMD()
	if !m.IsExact() {
		t.Fatal("exact MD reported fuzzy")
	}
	m.Premise[0].Sim = Similarity{Kind: SimPrefix}
	if m.IsExact() {
		t.Fatal("fuzzy MD reported exact")
	}
}

func TestDeriveRules(t *testing.T) {
	input, masterSch := dataset.CustSchema(), dataset.PersonSchema()
	ds, err := DeriveRules([]*MD{demoMD()}, input, masterSch)
	if err != nil {
		t.Fatal(err)
	}
	if len(ds) != 1 {
		t.Fatalf("derivations = %d", len(ds))
	}
	d := ds[0]
	if d.Downgraded {
		t.Fatal("exact MD marked downgraded")
	}
	r := d.Rule
	if r.ID != "er_md1" || len(r.Match) != 1 || len(r.Set) != 2 {
		t.Fatalf("rule = %v", r)
	}
	if err := r.Validate(input, masterSch); err != nil {
		t.Fatal(err)
	}
}

func TestDeriveRulesDowngrade(t *testing.T) {
	input, masterSch := dataset.CustSchema(), dataset.PersonSchema()
	m := demoMD()
	m.Premise[0].Sim = Similarity{Kind: SimEdit, MaxDist: 2}
	ds, err := DeriveRules([]*MD{m}, input, masterSch)
	if err != nil {
		t.Fatal(err)
	}
	if !ds[0].Downgraded {
		t.Fatal("fuzzy derivation not marked downgraded")
	}
	if !strings.Contains(ds[0].Rule.Comment, "downgraded") {
		t.Errorf("Comment = %q", ds[0].Rule.Comment)
	}
}

func TestDeriveRulesInvalid(t *testing.T) {
	input, masterSch := dataset.CustSchema(), dataset.PersonSchema()
	bad := demoMD()
	bad.Premise[0].Left = "bogus"
	if _, err := DeriveRules([]*MD{bad}, input, masterSch); err == nil {
		t.Fatal("invalid MD derived")
	}
}

// End to end: the MD-derived rule behaves like the demo's φ4/φ5 —
// with phn validated, FN/LN are fixed from master.
func TestDerivedRuleFixesNames(t *testing.T) {
	st := master.New(dataset.PersonSchema())
	for _, row := range dataset.DemoMasterRows() {
		if _, err := st.InsertValues(row...); err != nil {
			t.Fatal(err)
		}
	}
	ds, err := DeriveRules([]*MD{demoMD()}, dataset.CustSchema(), dataset.PersonSchema())
	if err != nil {
		t.Fatal(err)
	}
	rs, err := rule.NewSet(ds[0].Rule)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := core.NewEngine(dataset.CustSchema(), rs, st)
	if err != nil {
		t.Fatal(err)
	}
	res := eng.Chase(dataset.DemoInputFig3(), schema.SetOfNames(dataset.CustSchema(), "phn"))
	if res.Tuple.Get("FN") != "Mark" || res.Tuple.Get("LN") != "Smith" {
		t.Fatalf("names = %q %q", res.Tuple.Get("FN"), res.Tuple.Get("LN"))
	}
}

func TestStrings(t *testing.T) {
	m := demoMD()
	m.Premise[0].Sim = Similarity{Kind: SimEdit, MaxDist: 1}
	s := m.String()
	if !strings.Contains(s, "~edit(1)") || !strings.Contains(s, "<=>") {
		t.Errorf("String = %q", s)
	}
	if SimEq.String() != "=" || SimPrefix.String() != "~prefix" {
		t.Error("kind names wrong")
	}
}
