package server

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"testing"

	"cerfix"
	"cerfix/internal/dataset"
	"cerfix/internal/jobs"
	"cerfix/internal/pipeline"
	"cerfix/internal/schema"
)

// TestBatchFixResponseBytesUnchanged pins POST /api/fix's exact
// response bytes across the switch from marshaling a batchResponse to
// rendering incrementally with jobs.ResultEncoder under the
// pipeline's recycling contract: the body must equal
// json.Encoder(batchResponse built the pre-change way) byte for byte —
// trailing newline included — for fixes, confirmations, conflicts and
// escape-heavy values.
func TestBatchFixResponseBytesUnchanged(t *testing.T) {
	ts := demoServer(t)
	sch := dataset.CustSchema()

	tuples := []map[string]string{
		dataset.DemoInputFig3().Map(),
		dataset.DemoInputExample1().Map(),
		// Validated wrong FN: φ4 derives "Mark" → ValidatedContradiction.
		schema.MustTuple(sch, "Wrong", "Smith", "201", "075568485", "2", "s", "c", "NW1 6XE", "i").Map(),
		// Escape-heavy values that no rule touches.
		schema.MustTuple(sch, `qu"ote`, `back\slash`, "a&b", "<tag>", "nl\n", "é漢🚀", " ", "\x01", "x").Map(),
	}
	validated := []string{"FN", "phn", "type", "item"}

	body, err := json.Marshal(map[string]any{"validated": validated, "tuples": tuples})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/api/fix", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	got, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != 200 {
		t.Fatalf("status %d: %s", resp.StatusCode, got)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Fatalf("Content-Type = %q", ct)
	}

	// Reference: the pre-change construction — a fresh system with the
	// same data, results materialized as TupleResults, marshaled with
	// json.Encoder (writeJSON's path).
	sys, err := cerfix.New(sch, dataset.PersonSchema(), dataset.DemoRulesDSL)
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range dataset.DemoMasterRows() {
		if err := sys.AddMasterRow(row.Strings()...); err != nil {
			t.Fatal(err)
		}
	}
	seed := schema.SetOfNames(sch, validated...)
	ref := batchResponse{Results: make([]batchTupleResult, 0, len(tuples))}
	for _, tm := range tuples {
		tu, err := schema.TupleFromMap(sch, tm)
		if err != nil {
			t.Fatal(err)
		}
		res := sys.Engine().Chase(tu, seed)
		ref.Results = append(ref.Results, jobs.NewTupleResult(sch, &pipeline.Result{Input: tu, Fixed: res.Tuple, Chase: res}))
		if res.AllValidated() && len(res.Conflicts) == 0 {
			ref.FullyValidated++
		}
		ref.CellsRewritten += len(res.Rewrites())
	}
	var want bytes.Buffer
	if err := json.NewEncoder(&want).Encode(ref); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want.Bytes()) {
		t.Fatalf("response bytes changed:\n got %s\nwant %s", got, want.Bytes())
	}

	// Sanity: the conflict case actually exercised the conflicts field.
	if !bytes.Contains(got, []byte(`"conflicts":[`)) {
		t.Fatal("test fixture no longer produces conflicts; coverage hole")
	}
}
