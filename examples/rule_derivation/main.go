// rule_derivation shows the two derivation paths of the rule engine
// (paper §2: editing rules "can be either explicitly specified by the
// users, or derived from integrity constraints, e.g., cfds and
// matching dependencies"):
//
//  1. CFDs → editing rules, including the Example 1 contrast: the bare
//     CFDs only detect the inconsistency, the heuristic repair breaks
//     the tuple, and the derived editing rules fix it correctly;
//  2. MDs → editing rules, with fuzzy premises downgraded to the exact
//     core.
package main

import (
	"fmt"
	"log"

	"cerfix/internal/cfd"
	"cerfix/internal/core"
	"cerfix/internal/dataset"
	"cerfix/internal/master"
	"cerfix/internal/md"
	"cerfix/internal/rule"
	"cerfix/internal/schema"
)

func main() {
	cfdPart()
	mdPart()
}

func cfdPart() {
	fmt.Println("== CFDs -> editing rules ==")
	// Example 1's constraints: they detect the AC/city inconsistency
	// but cannot localize it.
	psis, err := cfd.ParseSet(`
psi1: AC = "020" -> city = "Ldn"
psi2: AC = "131" -> city = "Edi"
`)
	if err != nil {
		log.Fatal(err)
	}
	t := dataset.DemoInputExample1()
	fmt.Println("dirty tuple:", t)
	for _, v := range cfd.CheckTuple(psis, t) {
		fmt.Println("  violation:", v)
	}

	// The heuristic repair "fixes" the violation by overwriting the
	// correct city.
	repaired, _ := cfd.NewRepairer(psis).RepairTuple(t)
	fmt.Printf("heuristic repair: city %q -> %q, AC stays %q  (wrong on both counts)\n",
		t.Get("city"), repaired.Get("city"), repaired.Get("AC"))

	// Derive editing rules from a variable CFD over the same relation
	// and fix with master data instead.
	fd, err := cfd.ParseSet(`fdzip: zip -> AC, city, str`)
	if err != nil {
		log.Fatal(err)
	}
	derived, err := cfd.DeriveRules(fd, dataset.CustSchema())
	if err != nil {
		log.Fatal(err)
	}
	for _, r := range derived {
		fmt.Println("derived rule:", r)
	}
	st := master.New(dataset.CustSchema()) // same-schema master
	if _, err := st.InsertValues("Robert", "Brady", "131", "079172485", "2",
		"501 Elm St", "Edi", "EH8 4AH", "CD"); err != nil {
		log.Fatal(err)
	}
	rs, err := rule.NewSet(derived...)
	if err != nil {
		log.Fatal(err)
	}
	eng, err := core.NewEngine(dataset.CustSchema(), rs, st)
	if err != nil {
		log.Fatal(err)
	}
	res := eng.Chase(t, schema.SetOfNames(dataset.CustSchema(), "zip"))
	fmt.Printf("certain fix via derived rules: AC %q -> %q, city stays %q\n\n",
		t.Get("AC"), res.Tuple.Get("AC"), res.Tuple.Get("city"))
}

func mdPart() {
	fmt.Println("== MDs -> editing rules ==")
	m := &md.MD{
		ID: "md1",
		Premise: []md.Clause{{
			Left: "phn", Right: "Mphn",
			Sim: md.Similarity{Kind: md.SimEdit, MaxDist: 1},
		}},
		Consequence: []md.Identify{
			{Left: "FN", Right: "FN"},
			{Left: "LN", Right: "LN"},
		},
	}
	fmt.Println("matching dependency:", m)

	// Fuzzy record matching finds the entity even with a phone typo.
	st := master.New(dataset.PersonSchema())
	for _, row := range dataset.DemoMasterRows() {
		if _, err := st.InsertValues(row...); err != nil {
			log.Fatal(err)
		}
	}
	typo := dataset.DemoInputFig3().Clone()
	typo.Set("phn", "075568486") // one digit off
	for _, s := range m.FindMatches(typo, st.All()) {
		fmt.Printf("fuzzy match despite typo: %s %s (mobile %s)\n",
			s.Get("FN"), s.Get("LN"), s.Get("Mphn"))
	}

	// Derivation downgrades the fuzzy premise to the exact core.
	ds, err := md.DeriveRules([]*md.MD{m}, dataset.CustSchema(), dataset.PersonSchema())
	if err != nil {
		log.Fatal(err)
	}
	for _, d := range ds {
		fmt.Printf("derived rule (downgraded=%v): %s\n", d.Downgraded, d.Rule)
	}

	// The derived rule fixes the names once phn is validated (with the
	// correct, exact phone).
	rs, err := rule.NewSet(ds[0].Rule)
	if err != nil {
		log.Fatal(err)
	}
	eng, err := core.NewEngine(dataset.CustSchema(), rs, st)
	if err != nil {
		log.Fatal(err)
	}
	res := eng.Chase(dataset.DemoInputFig3(), schema.SetOfNames(dataset.CustSchema(), "phn"))
	fmt.Printf("after chase: FN=%s LN=%s\n", res.Tuple.Get("FN"), res.Tuple.Get("LN"))
}
