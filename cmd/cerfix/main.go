// Command cerfix is the command-line front end of the CerFix
// reproduction. Subcommands:
//
//	check    — run the rule engine's consistency analysis
//	regions  — print the top-k certain regions
//	fix      — batch-fix a CSV of input tuples given validated attributes
//	           (streamed file-to-file through the sharded repair
//	           pipeline; -workers N parallelizes with output identical
//	           to the sequential path)
//	monitor  — interactively fix one tuple (stdin/stdout session)
//	demo     — run the paper's Fig. 3 walkthrough on built-in data
//	jobs     — submit/poll async batch repairs against a running
//	           cerfixd (persistent queue, see internal/jobs)
//
// Schemas are given inline as "NAME:attr1,attr2,..." (all string
// domains; the library API supports typed domains). Master data and
// inputs are CSV files with header rows. Rules use the DSL, e.g.:
//
//	phi1: match zip~zip set AC := AC
//	phi4: match phn~Mphn set FN := FN when type = "2"
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"os"
	"runtime"
	"sort"
	"strings"

	"cerfix"
	"cerfix/internal/dataset"
	"cerfix/internal/pipeline"
	"cerfix/internal/schema"
	"cerfix/internal/textutil"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "check":
		err = cmdCheck(os.Args[2:])
	case "regions":
		err = cmdRegions(os.Args[2:])
	case "fix":
		err = cmdFix(os.Args[2:])
	case "monitor":
		err = cmdMonitor(os.Args[2:])
	case "demo":
		err = cmdDemo(os.Args[2:])
	case "discover":
		err = cmdDiscover(os.Args[2:])
	case "jobs":
		err = cmdJobs(os.Args[2:])
	case "-h", "--help", "help":
		usage()
	default:
		usage()
		err = fmt.Errorf("unknown subcommand %q", os.Args[1])
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "cerfix:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: cerfix <check|regions|fix|monitor|demo|discover|jobs> [flags]
  cerfix check   -input CUST:FN,LN,... -master-schema PERSON:... -rules rules.txt -master master.csv
  cerfix regions -input ... -master-schema ... -rules ... -master ... [-k 5]
  cerfix fix     -input ... -master-schema ... -rules ... -master ... -data dirty.csv -validated zip,type [-workers N] [-out fixed.csv]
  cerfix monitor -input ... -master-schema ... -rules ... -master ...
  cerfix demo
  cerfix discover -schema HOSP:prov,... -data master.csv
  cerfix jobs    <submit|list|status|results|cancel> -addr http://host:8080 [flags]`)
}

// config is the shared flag bundle.
type config struct {
	inputSpec, masterSpec string
	rulesPath, masterPath string
}

func (c *config) register(fs *flag.FlagSet) {
	fs.StringVar(&c.inputSpec, "input", "", `input schema spec "NAME:attr1,attr2,..."`)
	fs.StringVar(&c.masterSpec, "master-schema", "", `master schema spec "NAME:attr1,..."`)
	fs.StringVar(&c.rulesPath, "rules", "", "editing-rule DSL file")
	fs.StringVar(&c.masterPath, "master", "", "master data CSV file")
}

// parseSchemaSpec builds a schema from "NAME:a,b,c".
func parseSchemaSpec(spec string) (*cerfix.Schema, error) {
	name, attrs, ok := strings.Cut(spec, ":")
	if !ok || name == "" {
		return nil, fmt.Errorf("bad schema spec %q (want NAME:attr1,attr2,...)", spec)
	}
	parts := strings.Split(attrs, ",")
	for i := range parts {
		parts[i] = strings.TrimSpace(parts[i])
	}
	return cerfix.NewSchema(name, cerfix.StringAttrs(parts...)...)
}

// buildSystem wires a System from the config.
func buildSystem(c *config) (*cerfix.System, error) {
	if c.inputSpec == "" || c.masterSpec == "" || c.rulesPath == "" {
		return nil, fmt.Errorf("-input, -master-schema and -rules are required")
	}
	input, err := parseSchemaSpec(c.inputSpec)
	if err != nil {
		return nil, err
	}
	masterSch, err := parseSchemaSpec(c.masterSpec)
	if err != nil {
		return nil, err
	}
	dsl, err := os.ReadFile(c.rulesPath)
	if err != nil {
		return nil, err
	}
	sys, err := cerfix.New(input, masterSch, string(dsl))
	if err != nil {
		return nil, err
	}
	if c.masterPath != "" {
		f, err := os.Open(c.masterPath)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		if err := sys.LoadMasterCSV(f); err != nil {
			return nil, err
		}
	}
	return sys, nil
}

func cmdCheck(args []string) error {
	fs := flag.NewFlagSet("check", flag.ExitOnError)
	var c config
	c.register(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	sys, err := buildSystem(&c)
	if err != nil {
		return err
	}
	rep := sys.CheckConsistency()
	fmt.Printf("rules: %d, master tuples: %d\n", sys.RuleSet().Len(), sys.Master().Len())
	fmt.Printf("consistent: %v (errors: %d, warnings: %d, probes: %d)\n",
		rep.Consistent(), len(rep.Errors()), len(rep.Warnings()), rep.ProbesRun)
	for _, is := range rep.Issues {
		fmt.Println(" ", is.String())
	}
	if !rep.Consistent() {
		return fmt.Errorf("rule set is inconsistent")
	}
	return nil
}

func cmdRegions(args []string) error {
	fs := flag.NewFlagSet("regions", flag.ExitOnError)
	var c config
	c.register(fs)
	k := fs.Int("k", 5, "number of regions to print (0 = all)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	sys, err := buildSystem(&c)
	if err != nil {
		return err
	}
	regions := sys.Regions(*k)
	if len(regions) == 0 {
		fmt.Println("no certain regions (is master data loaded?)")
		return nil
	}
	tbl := textutil.NewTextTable("#", "|Z|", "attributes", "tableau rows")
	for i, r := range regions {
		tbl.AddRow(fmt.Sprint(i+1), fmt.Sprint(r.Size()),
			strings.Join(r.AttrNames(), ", "), fmt.Sprint(len(r.Tableau.Rows)))
	}
	fmt.Print(tbl.String())
	return nil
}

// cmdFix is the CLI's batch-repair mode: it streams the dirty CSV
// through internal/pipeline's sharded worker pool file-to-file, so
// inputs of any size repair with flat memory — the pipeline recycles
// its tuples, results and encoder buffers through the in-flight
// window, allocating O(window) rather than O(rows) — and output
// identical to the sequential path regardless of -workers.
func cmdFix(args []string) error {
	fs := flag.NewFlagSet("fix", flag.ExitOnError)
	var c config
	c.register(fs)
	dataPath := fs.String("data", "", "dirty input CSV file")
	validated := fs.String("validated", "", "comma-separated attributes asserted correct")
	outPath := fs.String("out", "", "output CSV (default: stdout summary only)")
	workers := fs.Int("workers", runtime.GOMAXPROCS(0), "parallel fix workers (1 = sequential)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	sys, err := buildSystem(&c)
	if err != nil {
		return err
	}
	if *dataPath == "" || *validated == "" {
		return fmt.Errorf("-data and -validated are required")
	}
	attrs := strings.Split(*validated, ",")
	for i := range attrs {
		attrs[i] = strings.TrimSpace(attrs[i])
		if !sys.InputSchema().Has(attrs[i]) {
			return fmt.Errorf("unknown validated attribute %q", attrs[i])
		}
	}
	in, err := os.Open(*dataPath)
	if err != nil {
		return err
	}
	defer in.Close()
	src, err := pipeline.NewCSVSource(sys.InputSchema(), in)
	if err != nil {
		return err
	}
	sink := pipeline.Discard
	var csvSink *pipeline.CSVSink
	var out *os.File
	if *outPath != "" {
		out, err = os.Create(*outPath)
		if err != nil {
			return err
		}
		defer out.Close()
		csvSink, err = pipeline.NewCSVSink(sys.InputSchema(), out)
		if err != nil {
			return err
		}
		sink = csvSink
	}
	seed := schema.SetOfNames(sys.InputSchema(), attrs...)
	stats, err := pipeline.Run(context.Background(), sys.Engine(), seed, src, sink, &pipeline.Options{Workers: *workers})
	if err != nil {
		return err
	}
	fmt.Printf("tuples: %d, fully validated: %d, with conflicts: %d, cells rewritten: %d\n",
		stats.Tuples, stats.FullyValidated, stats.WithConflicts, stats.CellsRewritten)
	if out != nil {
		if err := csvSink.Flush(); err != nil {
			return err
		}
		if err := out.Sync(); err != nil {
			return err
		}
		fmt.Println("fixed tuples written to", *outPath)
	}
	return nil
}

func cmdMonitor(args []string) error {
	fs := flag.NewFlagSet("monitor", flag.ExitOnError)
	var c config
	c.register(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	sys, err := buildSystem(&c)
	if err != nil {
		return err
	}
	return runInteractive(sys, os.Stdin, os.Stdout)
}

// runInteractive drives a stdin session: first the tuple values, then
// validation rounds.
func runInteractive(sys *cerfix.System, in *os.File, out *os.File) error {
	sc := bufio.NewScanner(in)
	names := sys.InputSchema().AttrNames()
	fmt.Fprintf(out, "enter tuple as attr=value pairs separated by ';' (attrs: %s)\n> ",
		strings.Join(names, ", "))
	if !sc.Scan() {
		return fmt.Errorf("no input")
	}
	vals, err := parsePairs(sc.Text())
	if err != nil {
		return err
	}
	sess, err := sys.NewSession(vals)
	if err != nil {
		return err
	}
	for !sess.Done() {
		fmt.Fprintf(out, "suggested to validate: %s\n", strings.Join(sess.Suggestion(), ", "))
		fmt.Fprintf(out, "validate (attr=value;...) or empty to accept suggestion as-is\n> ")
		if !sc.Scan() {
			break
		}
		line := strings.TrimSpace(sc.Text())
		var res *cerfix.ChaseResult
		if line == "" {
			res, err = sess.ValidateSuggested()
		} else {
			var m map[string]string
			m, err = parsePairs(line)
			if err == nil {
				res, err = sess.Validate(m)
			}
		}
		if err != nil {
			fmt.Fprintln(out, "error:", err)
			continue
		}
		for _, ch := range res.Changes {
			if ch.IsRewrite() {
				fmt.Fprintf(out, "  fixed %s: %q -> %q (rule %s, master #%d)\n",
					ch.Attr, string(ch.Old), string(ch.New), ch.RuleID, ch.MasterID)
			} else {
				fmt.Fprintf(out, "  confirmed %s = %q (rule %s)\n", ch.Attr, string(ch.New), ch.RuleID)
			}
		}
		fmt.Fprintf(out, "validated: %s\n", strings.Join(sortedNames(sess), ", "))
	}
	fmt.Fprintf(out, "final tuple: %s\ncertain: %v\n", sess.Tuple, sess.Certain())
	return nil
}

func sortedNames(sess *cerfix.Session) []string {
	out := sess.Validated.SortedNames(sess.Tuple.Schema)
	sort.Strings(out)
	return out
}

func parsePairs(line string) (map[string]string, error) {
	out := make(map[string]string)
	for _, part := range strings.Split(line, ";") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		k, v, ok := strings.Cut(part, "=")
		if !ok {
			return nil, fmt.Errorf("bad pair %q (want attr=value)", part)
		}
		out[strings.TrimSpace(k)] = strings.TrimSpace(v)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no pairs in %q", line)
	}
	return out, nil
}

// cmdDemo replays the paper's Fig. 3 walkthrough on built-in data.
func cmdDemo(args []string) error {
	fs := flag.NewFlagSet("demo", flag.ExitOnError)
	if err := fs.Parse(args); err != nil {
		return err
	}
	sys, err := cerfix.New(dataset.CustSchema(), dataset.PersonSchema(), dataset.DemoRulesDSL)
	if err != nil {
		return err
	}
	for _, row := range dataset.DemoMasterRows() {
		if err := sys.AddMasterRow(row.Strings()...); err != nil {
			return err
		}
	}
	fmt.Println("CerFix demo — the paper's Fig. 3 walkthrough")
	fmt.Println("input tuple:", dataset.DemoInputFig3())
	sess, err := sys.NewSessionTuple(dataset.DemoInputFig3())
	if err != nil {
		return err
	}
	fmt.Println("\nround 1: user validates AC=201, phn=075568485, type=2, item=DVD")
	res, err := sess.Validate(map[string]string{
		"AC": "201", "phn": "075568485", "type": "2", "item": "DVD",
	})
	if err != nil {
		return err
	}
	for _, ch := range res.Changes {
		if ch.IsRewrite() {
			fmt.Printf("  CerFix fixed %s: %q -> %q (rule %s)\n", ch.Attr, string(ch.Old), string(ch.New), ch.RuleID)
		} else {
			fmt.Printf("  CerFix confirmed %s = %q (rule %s)\n", ch.Attr, string(ch.New), ch.RuleID)
		}
	}
	fmt.Println("  new suggestion:", strings.Join(sess.Suggestion(), ", "))
	fmt.Println("\nround 2: user validates the suggestion (zip)")
	if _, err := sess.ValidateSuggested(); err != nil {
		return err
	}
	fmt.Println("\nfinal tuple:", sess.Tuple)
	fmt.Println("certain fix:", sess.Certain())
	return nil
}
