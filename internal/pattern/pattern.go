// Package pattern implements the pattern tuples of editing rules, CFDs
// and certain-region tableaux. A pattern is a conjunction of per-
// attribute conditions built from a small operator set (=, !=, <, <=,
// >, >=, IN, wildcard). Besides matching concrete tuples, patterns
// support the light symbolic reasoning the rule engine needs: joint
// satisfiability of two patterns (can some tuple match both?) — the
// core of the pairwise consistency check — and implication between
// single-attribute condition sets.
package pattern

import (
	"fmt"
	"sort"
	"strings"

	"cerfix/internal/schema"
	"cerfix/internal/value"
)

// Op enumerates condition operators.
type Op int

const (
	// OpAny matches every value (the wildcard "_").
	OpAny Op = iota
	// OpEq matches values equal to the constant.
	OpEq
	// OpNe matches values different from the constant.
	OpNe
	// OpLt matches values strictly below the constant.
	OpLt
	// OpLe matches values at or below the constant.
	OpLe
	// OpGt matches values strictly above the constant.
	OpGt
	// OpGe matches values at or above the constant.
	OpGe
	// OpIn matches values contained in the constant set.
	OpIn
)

// String renders the operator in the DSL's syntax.
func (o Op) String() string {
	switch o {
	case OpAny:
		return "_"
	case OpEq:
		return "="
	case OpNe:
		return "!="
	case OpLt:
		return "<"
	case OpLe:
		return "<="
	case OpGt:
		return ">"
	case OpGe:
		return ">="
	case OpIn:
		return "in"
	default:
		return fmt.Sprintf("op(%d)", int(o))
	}
}

// Condition constrains a single attribute.
type Condition struct {
	// Attr is the constrained attribute's name (input-tuple schema).
	Attr string
	// Op is the comparison operator.
	Op Op
	// Const is the right-hand constant for binary operators.
	Const value.V
	// Set holds the membership constants for OpIn (sorted, deduped by
	// NewIn).
	Set []value.V
}

// Eq builds an equality condition.
func Eq(attr string, c value.V) Condition { return Condition{Attr: attr, Op: OpEq, Const: c} }

// Ne builds a disequality condition (e.g. the paper's AC != "0800").
func Ne(attr string, c value.V) Condition { return Condition{Attr: attr, Op: OpNe, Const: c} }

// Lt builds a strictly-less-than condition.
func Lt(attr string, c value.V) Condition { return Condition{Attr: attr, Op: OpLt, Const: c} }

// Le builds a less-or-equal condition.
func Le(attr string, c value.V) Condition { return Condition{Attr: attr, Op: OpLe, Const: c} }

// Gt builds a strictly-greater-than condition.
func Gt(attr string, c value.V) Condition { return Condition{Attr: attr, Op: OpGt, Const: c} }

// Ge builds a greater-or-equal condition.
func Ge(attr string, c value.V) Condition { return Condition{Attr: attr, Op: OpGe, Const: c} }

// In builds a set-membership condition; constants are sorted and
// deduplicated so In("a","b") and In("b","a","a") are identical.
func In(attr string, cs ...value.V) Condition {
	set := make([]value.V, 0, len(cs))
	seen := make(map[value.V]bool, len(cs))
	for _, c := range cs {
		if !seen[c] {
			seen[c] = true
			set = append(set, c)
		}
	}
	sort.Slice(set, func(i, j int) bool { return set[i] < set[j] })
	return Condition{Attr: attr, Op: OpIn, Set: set}
}

// Any builds a wildcard condition (documents that attr participates in
// the pattern scope without constraining it).
func Any(attr string) Condition { return Condition{Attr: attr, Op: OpAny} }

// Matches reports whether v satisfies the condition under domain d.
func (c Condition) Matches(v value.V, d value.Domain) bool {
	switch c.Op {
	case OpAny:
		return true
	case OpEq:
		return value.Equal(v, c.Const, d)
	case OpNe:
		return !value.Equal(v, c.Const, d)
	case OpLt:
		return value.Compare(v, c.Const, d) < 0
	case OpLe:
		return value.Compare(v, c.Const, d) <= 0
	case OpGt:
		return value.Compare(v, c.Const, d) > 0
	case OpGe:
		return value.Compare(v, c.Const, d) >= 0
	case OpIn:
		for _, s := range c.Set {
			if value.Equal(v, s, d) {
				return true
			}
		}
		return false
	default:
		return false
	}
}

// String renders the condition in DSL syntax, e.g. `AC != "0800"`.
func (c Condition) String() string {
	switch c.Op {
	case OpAny:
		return c.Attr + " = _"
	case OpIn:
		parts := make([]string, len(c.Set))
		for i, s := range c.Set {
			parts[i] = fmt.Sprintf("%q", string(s))
		}
		return fmt.Sprintf("%s in {%s}", c.Attr, strings.Join(parts, ", "))
	default:
		return fmt.Sprintf("%s %s %q", c.Attr, c.Op, string(c.Const))
	}
}

// Pattern is a conjunction of conditions. The zero value (no
// conditions) matches every tuple — the paper's empty pattern tp = ().
type Pattern struct {
	Conds []Condition
}

// NewPattern builds a pattern from conditions.
func NewPattern(conds ...Condition) Pattern {
	cp := make([]Condition, len(conds))
	copy(cp, conds)
	return Pattern{Conds: cp}
}

// IsEmpty reports whether the pattern has no conditions (matches all).
func (p Pattern) IsEmpty() bool { return len(p.Conds) == 0 }

// Attrs returns the sorted distinct attribute names the pattern
// constrains (its scope Xp). Wildcard conditions count: they declare
// scope.
func (p Pattern) Attrs() []string {
	seen := make(map[string]bool)
	var out []string
	for _, c := range p.Conds {
		if !seen[c.Attr] {
			seen[c.Attr] = true
			out = append(out, c.Attr)
		}
	}
	sort.Strings(out)
	return out
}

// AttrSet resolves the pattern's scope against a schema.
func (p Pattern) AttrSet(sch *schema.Schema) schema.AttrSet {
	return schema.SetOfNames(sch, p.Attrs()...)
}

// Matches reports whether tuple t satisfies every condition. Attributes
// missing from t's schema fail the match (a pattern over a foreign
// attribute can never hold).
func (p Pattern) Matches(t *schema.Tuple) bool {
	for _, c := range p.Conds {
		i, ok := t.Schema.Index(c.Attr)
		if !ok {
			return false
		}
		if !c.Matches(t.At(i), t.Schema.Attr(i).Domain) {
			return false
		}
	}
	return true
}

// Conjoin returns a pattern requiring both p and q.
func (p Pattern) Conjoin(q Pattern) Pattern {
	out := make([]Condition, 0, len(p.Conds)+len(q.Conds))
	out = append(out, p.Conds...)
	out = append(out, q.Conds...)
	return Pattern{Conds: out}
}

// String renders the conjunction joined by " and "; the empty pattern
// renders as "()".
func (p Pattern) String() string {
	if p.IsEmpty() {
		return "()"
	}
	parts := make([]string, len(p.Conds))
	for i, c := range p.Conds {
		parts[i] = c.String()
	}
	return strings.Join(parts, " and ")
}

// Validate checks that every condition's attribute exists in sch and
// binary operators carry a constant set/marker consistent with their
// arity.
func (p Pattern) Validate(sch *schema.Schema) error {
	for _, c := range p.Conds {
		if !sch.Has(c.Attr) {
			return fmt.Errorf("pattern: attribute %q not in schema %s", c.Attr, sch.Name())
		}
		if c.Op == OpIn && len(c.Set) == 0 {
			return fmt.Errorf("pattern: empty IN set on %q", c.Attr)
		}
	}
	return nil
}
