package cowmap

import (
	"math/rand"
	"testing"

	"cerfix/internal/simd"
)

// refShard is the scalar FNV-1a routing definition FNV/FNVBytes
// replaced. Shard routing is persistent state in disguise — a key
// stored under one routing must be found under the other — so the
// simd-backed forms must match it bit for bit, under both kernel
// tables, for every string/bytes representation pair.
func refShard(k string, fanout int) int {
	h := uint32(2166136261)
	for i := 0; i < len(k); i++ {
		h = (h ^ uint32(k[i])) * 16777619
	}
	return int(h & uint32(fanout-1))
}

func TestFNVMatchesScalarReference(t *testing.T) {
	defer simd.Reset()
	for _, kernel := range []string{simd.KernelPortable, simd.KernelNative} {
		if err := simd.Select(kernel); err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(7))
		for trial := 0; trial < 5000; trial++ {
			n := rng.Intn(80)
			b := make([]byte, n)
			for i := range b {
				b[i] = byte(rng.Intn(256))
			}
			k := string(b)
			for _, fanout := range []int{1, 16, 64, 256} {
				want := refShard(k, fanout)
				if got := FNV(k, fanout); got != want {
					t.Fatalf("kernel %s: FNV(%q, %d) = %d, want %d", kernel, k, fanout, got, want)
				}
				if got := FNVBytes(b, fanout); got != want {
					t.Fatalf("kernel %s: FNVBytes(%q, %d) = %d, want %d", kernel, k, fanout, got, want)
				}
			}
		}
	}
}
