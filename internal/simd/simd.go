// Package simd provides the byte-level kernels behind the hot paths
// that remain after the allocation work of earlier iterations: line
// and field scanning in the pipeline sources, FNV-1a key hashing in
// the sharded maps and the interning dictionary, and the JSON
// special-byte scan of the flat-string fast path.
//
// Each primitive has ONE dispatch point (a package function variable)
// and two implementations:
//
//   - portable: SWAR over 8-byte words — plain Go, no unsafe, no
//     build tags, always available. The word loads compile to single
//     MOVs on little-endian targets; the classification tricks
//     (haszero, hasless) are exact at and below the first matching
//     byte, which is the only byte these kernels report.
//   - native: the per-architecture upgrade where one is profitable.
//     On amd64 that is bytes.IndexByte (vectorized in the runtime);
//     primitives with no profitable native form share the SWAR body.
//
// Dispatch is decided once at init: the default is the native table,
// and setting CERFIX_KERNELS=portable forces the SWAR fallback so CI
// (and any debugging session) can exercise both paths on the same
// machine. Both tables are semantically identical — the differential
// suite pins every kernel byte-for-byte against a naive scalar
// reference — so selection can never change results, only speed.
package simd

import (
	"fmt"
	"os"
)

// Kernel table names accepted by Select.
const (
	// KernelPortable names the SWAR fallback table.
	KernelPortable = "portable"
	// KernelNative names the per-architecture table (equal to the
	// portable table on architectures without a native upgrade).
	KernelNative = "native"
)

// table is one complete kernel set. Primitives dispatch through the
// package-level current table; swapping tables is the whole dispatch
// mechanism.
type table struct {
	name      string
	indexByte func(b []byte, c byte) int
	scanJSON  func(b []byte) int
	hash      func(h uint32, s string) uint32
	hashBytes func(h uint32, b []byte) uint32
}

var portableTable = table{
	name:      KernelPortable,
	indexByte: indexByteSWAR,
	scanJSON:  scanJSONSWAR,
	hash:      fnv1aString,
	hashBytes: fnv1aBytes,
}

// nativeTable starts as a copy of the portable table; architecture
// files (native_amd64.go) overwrite the entries where the platform has
// a profitable upgrade and rename the table after the architecture.
var nativeTable = table{
	name:      KernelPortable,
	indexByte: indexByteSWAR,
	scanJSON:  scanJSONSWAR,
	hash:      fnv1aString,
	hashBytes: fnv1aBytes,
}

var (
	cur      table
	override string
)

func init() {
	override = os.Getenv("CERFIX_KERNELS")
	if override == KernelPortable {
		cur = portableTable
	} else {
		cur = nativeTable
	}
}

// Select switches the process to the named kernel table ("portable" or
// "native"). It exists for tests and benchmarks that need both paths
// in one process; servers pick once at init via CERFIX_KERNELS. Not
// safe to call concurrently with kernel use.
func Select(name string) error {
	switch name {
	case KernelPortable:
		cur = portableTable
	case KernelNative:
		cur = nativeTable
	default:
		return fmt.Errorf("simd: unknown kernel table %q", name)
	}
	return nil
}

// Reset reselects the process default: the portable table when
// CERFIX_KERNELS=portable, else native. Tests that Select their way
// through both tables defer a Reset so the rest of the binary runs
// the configuration under test.
func Reset() {
	if override == KernelPortable {
		cur = portableTable
	} else {
		cur = nativeTable
	}
}

// Active reports which implementation actually runs: the architecture
// name ("amd64") when native kernels are selected and present, else
// "portable".
func Active() string { return cur.name }

// Override reports the CERFIX_KERNELS value the process started with
// ("" when unset) so startup logs can say why a path was chosen.
func Override() string { return override }

// IndexByte returns the index of the first occurrence of c in b, or
// -1. Semantics match bytes.IndexByte.
func IndexByte(b []byte, c byte) int { return cur.indexByte(b, c) }

// ScanJSON returns the index of the first byte of b that the JSONL
// flat-string fast path cannot copy verbatim: a double quote, a
// backslash, a control byte (< 0x20) or a non-ASCII byte (>= 0x80).
// Returns -1 when every byte is a plain ASCII string byte. The caller
// inspects the reported byte: a quote ends the string, a high byte
// starts a UTF-8 rune to validate, anything else falls back to
// encoding/json.
func ScanJSON(b []byte) int { return cur.scanJSON(b) }

// fnvOffset and fnvPrime are the standard 32-bit FNV-1a parameters,
// shared with the scalar references so every implementation hashes
// identically.
const (
	fnvOffset = 2166136261
	fnvPrime  = 16777619
)

// Hash returns the 32-bit FNV-1a hash of s. The wide implementation
// loads 8 bytes per step and applies the 8 mix steps from the loaded
// word, which is bit-identical to the byte-at-a-time definition (the
// mix chain is inherently sequential; only the loads widen).
func Hash(s string) uint32 { return cur.hash(fnvOffset, s) }

// HashBytes is Hash for a byte slice: same bytes, same hash, without
// converting (and allocating) the string.
func HashBytes(b []byte) uint32 { return cur.hashBytes(fnvOffset, b) }
